// Package embed provides the semantic text encoders FexIoT uses for node
// features and correlation features: word embeddings (the paper uses the
// 300-d spaCy en_core_web_lg vectors), a sentence encoder (the paper uses
// the 512-d Universal Sentence Encoder), the dynamic-time-warping similarity
// between element sequences, and the trigger-action pair embedding of
// Eq. (1).
//
// Substitution note (DESIGN.md): embeddings are built deterministically from
// the IoT lexicon — words sharing a synset receive nearly identical vectors,
// words linked by hypernymy share components, and unrelated words are
// near-orthogonal in expectation. This preserves the only property the
// downstream learners rely on: semantic proximity in vector space.
package embed

import (
	"hash/fnv"
	"math"
	"sync"

	"fexiot/internal/lexicon"
	"fexiot/internal/mat"
	"fexiot/internal/text"
)

// Encoder produces deterministic word and sentence embeddings. It memoises
// aggressively behind a mutex, so it is safe for concurrent use: the
// serving engine fuses request rules into graphs from many goroutines at
// once, and every embedding is a pure function of its key, so concurrent
// fills converge on identical vectors. Cached slices are shared — callers
// must treat returned vectors as read-only (every call site copies or
// accumulates into its own buffer).
type Encoder struct {
	wordDim     int
	sentenceDim int
	lex         *lexicon.Lexicon

	mu        sync.Mutex
	wordCache map[string][]float64
	sentCache map[string][]float64
}

// Default dimensions follow the paper: 300-d word vectors, 512-d sentence
// vectors. Experiments may construct smaller encoders for speed; the
// geometry is preserved at any dimension.
const (
	PaperWordDim     = 300
	PaperSentenceDim = 512
)

// NewEncoder creates an encoder with the given word and sentence dimensions.
func NewEncoder(wordDim, sentenceDim int) *Encoder {
	return &Encoder{
		wordDim:     wordDim,
		sentenceDim: sentenceDim,
		lex:         lexicon.New(),
		wordCache:   map[string][]float64{},
		sentCache:   map[string][]float64{},
	}
}

// WordDim returns the word embedding dimensionality.
func (e *Encoder) WordDim() int { return e.wordDim }

// SentenceDim returns the sentence embedding dimensionality.
func (e *Encoder) SentenceDim() int { return e.sentenceDim }

// hashGaussian fills a deterministic pseudo-Gaussian vector for key using a
// counter-mode FNV hash; the same key always yields the same vector.
func hashGaussian(key string, dim int, scale float64) []float64 {
	out := make([]float64, dim)
	h := fnv.New64a()
	h.Write([]byte(key))
	seed := h.Sum64()
	s := seed
	next := func() float64 {
		// xorshift64* stream.
		s ^= s >> 12
		s ^= s << 25
		s ^= s >> 27
		v := s * 2685821657736338717
		return float64(v>>11) / float64(1<<53) // uniform [0,1)
	}
	for i := 0; i < dim; i += 2 {
		// Box-Muller transform.
		u1 := next()
		for u1 == 0 {
			u1 = next()
		}
		u2 := next()
		r := math.Sqrt(-2 * math.Log(u1))
		out[i] = scale * r * math.Cos(2*math.Pi*u2)
		if i+1 < dim {
			out[i+1] = scale * r * math.Sin(2*math.Pi*u2)
		}
	}
	return out
}

// wordAt computes the embedding of w at an arbitrary dimension.
func (e *Encoder) wordAt(w string, dim int) []float64 {
	canon := e.lex.Canonical(w)
	vec := hashGaussian("synset:"+canon, dim, 1.0)
	// Share mass with ancestor concepts so hyponyms cluster under their
	// hypernyms (sensor kinds near "sensor", appliances near "appliance").
	weight := 0.6
	for _, parent := range e.lex.HypernymChain(canon) {
		mat.Axpy(vec, hashGaussian("concept:"+parent, dim, 1.0), weight)
		weight *= 0.5
	}
	// Small surface-form residual distinguishes synonyms without separating
	// them.
	mat.Axpy(vec, hashGaussian("surface:"+w, dim, 1.0), 0.15)
	// L2-normalise, matching pretrained embedding conventions.
	n := mat.Norm2(vec)
	if n > 0 {
		for i := range vec {
			vec[i] /= n
		}
	}
	return vec
}

// Word returns the word embedding (wordDim) for w, cached.
func (e *Encoder) Word(w string) []float64 {
	e.mu.Lock()
	if v, ok := e.wordCache[w]; ok {
		e.mu.Unlock()
		return v
	}
	e.mu.Unlock()
	// Compute outside the lock: wordAt is a pure function of (w, dim), so
	// two goroutines racing on a miss produce identical vectors and either
	// may win the cache slot.
	v := e.wordAt(w, e.wordDim)
	e.mu.Lock()
	e.wordCache[w] = v
	e.mu.Unlock()
	return v
}

// WordsMatrix stacks the embeddings of words into a len(words)×wordDim
// matrix.
func (e *Encoder) WordsMatrix(words []string) *mat.Dense {
	m := mat.NewDense(len(words), e.wordDim)
	for i, w := range words {
		m.SetRow(i, e.Word(w))
	}
	return m
}

// KeyPhraseEmbedding encodes a rule by averaging the word embeddings of its
// extracted key phrases (the paper's treatment of verbose app descriptions:
// "encoding key phrases can better model interaction logic").
func (e *Encoder) KeyPhraseEmbedding(rule string) []float64 {
	words := text.KeyPhrases(rule)
	out := make([]float64, e.wordDim)
	if len(words) == 0 {
		return out
	}
	for _, w := range words {
		mat.Axpy(out, e.Word(w), 1/float64(len(words)))
	}
	return out
}

// Sentence returns the sentence embedding (sentenceDim) of s: a frequency-
// weighted mean of word vectors at sentence dimension with a bigram-order
// term, the stand-in for the Universal Sentence Encoder used on concise
// voice-assistant commands.
func (e *Encoder) Sentence(s string) []float64 {
	e.mu.Lock()
	if v, ok := e.sentCache[s]; ok {
		e.mu.Unlock()
		return v
	}
	e.mu.Unlock()
	toks := text.Tokenize(s)
	out := make([]float64, e.sentenceDim)
	var content []string
	for _, w := range toks {
		if text.IsStopword(w) {
			continue
		}
		lemma := text.Lemmatize(w)
		mat.Axpy(out, e.wordAt(lemma, e.sentenceDim), 1)
		content = append(content, lemma)
	}
	if len(content) == 0 {
		e.sentCache[s] = out
		return out
	}
	for i := range out {
		out[i] /= float64(len(content))
	}
	// Order-sensitive bigram mixing over consecutive content words keeps
	// "light on if motion" distinct from "motion on if light".
	for i := 0; i+1 < len(content); i++ {
		bg := hashGaussian("bigram:"+content[i]+"_"+content[i+1], e.sentenceDim, 1.0)
		mat.Axpy(out, bg, 0.1/float64(len(content)))
	}
	n := mat.Norm2(out)
	if n > 0 {
		for i := range out {
			out[i] /= n
		}
	}
	e.sentCache[s] = out
	return out
}

// PairEmbedding implements Eq. (1): the trigger-action pair embedding is the
// mean of the trigger-sentence word embeddings plus the mean of the
// action-sentence word embeddings.
func (e *Encoder) PairEmbedding(trigger, action string) []float64 {
	out := make([]float64, e.wordDim)
	addMean := func(s string) {
		toks := text.Tokenize(s)
		var words []string
		for _, w := range toks {
			if !text.IsStopword(w) {
				words = append(words, text.Lemmatize(w))
			}
		}
		if len(words) == 0 {
			return
		}
		for _, w := range words {
			mat.Axpy(out, e.Word(w), 1/float64(len(words)))
		}
	}
	addMean(trigger)
	addMean(action)
	return out
}

// RuleEmbedding encodes a rule description for GNN node features: the mean
// embedding over all content lemmas, *including* location entities. Unlike
// the correlation features (which eliminate entities so room names do not
// fake correlations), node features must keep locations — whether two rules
// command the same kitchen light or different lights decides whether their
// interaction is vulnerable.
func (e *Encoder) RuleEmbedding(rule string) []float64 {
	toks := text.Tokenize(rule)
	out := make([]float64, e.wordDim)
	n := 0
	for _, w := range toks {
		if text.IsStopword(w) {
			continue
		}
		mat.Axpy(out, e.Word(text.Lemmatize(w)), 1)
		n++
	}
	if n > 0 {
		for i := range out {
			out[i] /= float64(n)
		}
	}
	return out
}

// HashVector returns the deterministic pseudo-Gaussian unit vector for an
// arbitrary key — the primitive behind instance-signature node features.
func HashVector(key string, dim int) []float64 {
	v := hashGaussian(key, dim, 1)
	n := mat.Norm2(v)
	if n > 0 {
		for i := range v {
			v[i] /= n
		}
	}
	return v
}

// Similarity returns the cosine similarity of the embeddings of two words.
func (e *Encoder) Similarity(a, b string) float64 {
	return mat.CosineSimilarity(e.Word(a), e.Word(b))
}
