//go:build debugarena

package mat

import "math"

// poison fills a released buffer with NaN. Any computation that reads the
// buffer after its Release — a use-after-recycle bug in tape or workspace
// code — then propagates NaN into its result, where CheckFinite, the
// divergence gates, and the debugarena tests catch it. Lease still zeroes,
// so correctly re-leased memory never observes the poison.
func poison(buf []float64) {
	nan := math.NaN()
	for i := range buf {
		buf[i] = nan
	}
}

// ArenaPoisonEnabled reports whether the debugarena NaN-poison build is
// active.
const ArenaPoisonEnabled = true
