package codec

import (
	"fmt"
	"math"
	"testing"
)

// benchDelta models one round's parameter delta: small, roughly centred
// values with a few dominant coordinates, the shape real training updates
// take after a local epoch.
func benchDelta(n int) []float64 {
	out := make([]float64, n)
	s := uint64(0x1234abcd)
	for i := range out {
		s = s*6364136223846793005 + 1442695040888963407
		out[i] = (float64(s>>11)/float64(1<<53) - 0.5) * 0.01
		if i%97 == 0 {
			out[i] *= 20 // sparse dominant spikes for topk to find
		}
	}
	return out
}

// BenchmarkCodecs measures encode+decode round trips per scheme and reports
// the estimated gob wire bytes per update (wire-B/op) and the compression
// ratio against dense raw64 (ratio-x). The q8 ratio is the acceptance pin:
// it must exceed 4x, which TestQ8BeatsRaw64ByFourX asserts so the number is
// enforced in `go test`, not only eyeballed in bench output.
func BenchmarkCodecs(b *testing.B) {
	const n = 4096
	delta := benchDelta(n)
	rawBytes := float64(mustWire(b, Raw64, delta))
	for _, name := range Names() {
		b.Run(name, func(b *testing.B) {
			cdc, err := New(name)
			if err != nil {
				b.Fatal(err)
			}
			var wire int64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				t := cdc.Encode(delta)
				wire = t.WireBytes()
				if _, err := cdc.Decode(t); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(wire), "wire-B/op")
			b.ReportMetric(rawBytes/float64(wire), "ratio-x")
		})
	}
}

func mustWire(tb testing.TB, name string, vals []float64) int64 {
	tb.Helper()
	cdc, err := New(name)
	if err != nil {
		tb.Fatal(err)
	}
	return cdc.Encode(vals).WireBytes()
}

// TestQ8BeatsRaw64ByFourX pins the benchmark's headline number as a hard
// test: on the benchmark delta distribution, q8 wire bytes must be at
// least 4x smaller than dense raw64, and topk must beat raw64 too.
func TestQ8BeatsRaw64ByFourX(t *testing.T) {
	delta := benchDelta(4096)
	raw := mustWire(t, Raw64, delta)
	for _, tc := range []struct {
		name string
		min  float64
	}{{Q8, 4}, {TopK, 2}, {F32, 1.2}} {
		wire := mustWire(t, tc.name, delta)
		ratio := float64(raw) / float64(wire)
		if ratio < tc.min {
			t.Errorf("%s: %d wire bytes vs %d raw64 — %.2fx, want ≥%.1fx",
				tc.name, wire, raw, ratio, tc.min)
		}
	}
}

// TestBenchDeltaReconstructs sanity-checks the benchmark corpus itself:
// every lossy scheme stays within its documented error bound on it, so the
// ratios above are earned on decodable, not degenerate, frames.
func TestBenchDeltaReconstructs(t *testing.T) {
	delta := benchDelta(4096)
	for _, name := range []string{F32, Q8} {
		cdc, _ := New(name)
		got, err := cdc.Decode(cdc.Encode(delta))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var worst float64
		for i := range delta {
			worst = math.Max(worst, math.Abs(got[i]-delta[i]))
		}
		// q8 bound: half a quantisation step over the ±0.1 spike range.
		if worst > 0.1/255+1e-9 {
			t.Fatalf("%s worst-case error %v", name, worst)
		}
	}
	if t.Failed() {
		fmt.Println("benchmark corpus no longer representative")
	}
}
