package fedproto

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"fexiot/internal/autodiff"
	"fexiot/internal/mat"
)

// freeAddr reserves a loopback address for a test server.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// scriptParams builds the deterministic two-layer parameter set every
// scripted chaos client starts from.
func scriptParams() *autodiff.ParamSet {
	p := autodiff.NewParamSet()
	p.Register("l0.w", 0, mat.NewDenseData(1, 2, []float64{1, 2}))
	p.Register("l1.w", 1, mat.NewDenseData(1, 2, []float64{3, 4}))
	return p
}

// addDelta shifts every parameter by d — a scripted "local training" step
// whose federated averages have a closed form the tests can pin.
func addDelta(p *autodiff.ParamSet, d float64) {
	for _, name := range p.Names() {
		m := p.Get(name)
		for i := range m.Data() {
			m.Data()[i] += d
		}
	}
}

// zeroNorms reports no layer movement, keeping the clustering gate shut so
// every round is a plain FedAvg the tests can predict.
func zeroNorms(p *autodiff.ParamSet) map[int]float64 {
	out := map[int]float64{}
	for l := 0; l < p.NumLayers(); l++ {
		out[l] = 0
	}
	return out
}

// TestQuorumSurvivesKilledClient is the headline fault-tolerance e2e: four
// clients, quorum 3, one hard-killed via the fault-injection conn between
// rounds 0 and 1. The server must finish every configured round with the
// survivors, and the survivors' aggregated model must equal the FedAvg
// closed form over exactly the clients that contributed each round.
func TestQuorumSurvivesKilledClient(t *testing.T) {
	addr := freeAddr(t)
	srv := NewServer(ServerConfig{
		Addr:         addr,
		Clients:      4,
		Rounds:       3,
		NumLayers:    2,
		Quorum:       0.75,
		MaxStrikes:   1,
		RoundTimeout: 2 * time.Second,
		Eps1:         0.4,
		Eps2:         0.95,
	})
	serverErr := make(chan error, 1)
	go func() {
		_, err := srv.Run(context.Background())
		serverErr <- err
	}()

	params := make([]*autodiff.ParamSet, 4)
	clientErrs := make([]error, 4)
	var wg sync.WaitGroup
	for id := 0; id < 4; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := scriptParams()
			params[id] = p
			var raw net.Conn
			var err error
			for try := 0; try < 50; try++ {
				raw, err = net.Dial("tcp", addr)
				if err == nil {
					break
				}
				time.Sleep(10 * time.Millisecond)
			}
			if err != nil {
				clientErrs[id] = err
				return
			}
			var fc *FaultConn
			if id == 3 {
				fc = NewFaultConn(raw)
				raw = fc
			}
			conn := Wrap(raw)
			defer conn.Close()
			clientErrs[id] = RunClientLoop(context.Background(), conn, id, 10, p,
				func(round int) map[int]float64 {
					if id == 3 && round == 1 {
						fc.Kill() // crash mid-federation, mid-round
					}
					addDelta(p, float64(id+1)*0.1)
					return zeroNorms(p)
				})
		}(id)
	}
	wg.Wait()

	select {
	case err := <-serverErr:
		if err != nil {
			t.Fatalf("server failed despite quorum: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not finish")
	}
	for id := 0; id < 3; id++ {
		if clientErrs[id] != nil {
			t.Fatalf("survivor %d: %v", id, clientErrs[id])
		}
	}
	if clientErrs[3] == nil {
		t.Fatal("killed client finished cleanly — Kill did not bite")
	}

	st := srv.Stats()
	if st.RoundsCompleted != 3 {
		t.Fatalf("rounds completed %d, want 3", st.RoundsCompleted)
	}
	if st.Evicted != 1 {
		t.Fatalf("evicted %d, want 1", st.Evicted)
	}
	wantResp := []int{4, 3, 3}
	for r, want := range wantResp {
		if st.Responders[r] != want {
			t.Fatalf("round %d responders %d, want %d (all: %v)", r, st.Responders[r], want, st.Responders)
		}
	}

	// Closed form: uniform sizes, so each round adds the plain mean of the
	// contributors' deltas. Round 0 has clients 0-3 (mean 0.25), rounds 1-2
	// the survivors 0-2 (mean 0.2 each).
	wantShift := 0.25 + 0.2 + 0.2
	base := scriptParams()
	for id := 0; id < 3; id++ {
		got := params[id].Flatten()
		for i, b := range base.Flatten() {
			want := b + wantShift
			if diff := got[i] - want; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("survivor %d element %d = %v, want %v", id, i, got[i], want)
			}
		}
	}
}

// TestEvictionAndRejoinResync drives the full strike → evict → reconnect →
// replay cycle: a client whose writes black-hole misses a round, strikes
// out, is evicted (socket closed), reconnects through RunClientSession's
// backoff, is re-admitted with the current round and aggregated model, and
// finishes the federation in sync with the steady clients.
func TestEvictionAndRejoinResync(t *testing.T) {
	addr := freeAddr(t)
	srv := NewServer(ServerConfig{
		Addr:         addr,
		Clients:      3,
		Rounds:       5,
		NumLayers:    2,
		Quorum:       0.5,
		MaxStrikes:   1,
		RoundTimeout: 300 * time.Millisecond,
		Eps1:         0.4,
		Eps2:         0.95,
	})
	serverErr := make(chan error, 1)
	go func() {
		_, err := srv.Run(context.Background())
		serverErr <- err
	}()
	// Let the listener come up before the sessions dial.
	for try := 0; try < 50; try++ {
		if c, err := net.Dial("tcp", addr); err == nil {
			c.Close()
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	params := make([]*autodiff.ParamSet, 3)
	stats := make([]SessionStats, 3)
	errs := make([]error, 3)
	var wg sync.WaitGroup
	for id := 0; id < 2; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := scriptParams()
			params[id] = p
			stats[id], errs[id] = RunClientSession(context.Background(), ClientConfig{
				Addr: addr, ID: id, DataSize: 10,
				OpTimeout: 5 * time.Second, Seed: int64(id),
			}, p, func(round int) map[int]float64 {
				// Pace the federation so the flaky client has rounds left
				// to rejoin into.
				time.Sleep(100 * time.Millisecond)
				addDelta(p, 0.1)
				return zeroNorms(p)
			})
		}(id)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		p := scriptParams()
		params[2] = p
		var fc *FaultConn
		dials := 0
		blackholed := false
		stats[2], errs[2] = RunClientSession(context.Background(), ClientConfig{
			Addr: addr, ID: 2, DataSize: 10,
			InitialBackoff: 10 * time.Millisecond,
			MaxBackoff:     20 * time.Millisecond,
			MaxAttempts:    10,
			OpTimeout:      2 * time.Second,
			Seed:           2,
			Dial: func(addr string) (net.Conn, error) {
				raw, err := net.Dial("tcp", addr)
				if err != nil {
					return nil, err
				}
				dials++
				if dials == 1 {
					fc = NewFaultConn(raw)
					return fc, nil
				}
				return raw, nil
			},
		}, p, func(round int) map[int]float64 {
			if round == 1 && !blackholed {
				// Half-open link: the round-1 update is silently swallowed,
				// so the server times this client out and evicts it.
				fc.DropAfter(0)
				blackholed = true
			}
			time.Sleep(50 * time.Millisecond)
			addDelta(p, 0.3)
			return zeroNorms(p)
		})
	}()
	wg.Wait()

	select {
	case err := <-serverErr:
		if err != nil {
			t.Fatalf("server: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not finish")
	}
	for id, err := range errs {
		if err != nil {
			t.Fatalf("client %d session: %v (stats %+v)", id, err, stats[id])
		}
	}
	if stats[2].Reconnects == 0 {
		t.Fatal("flaky client never reconnected")
	}

	st := srv.Stats()
	if st.RoundsCompleted != 5 {
		t.Fatalf("rounds completed %d, want 5", st.RoundsCompleted)
	}
	if st.Evicted != 1 || st.Rejoined != 1 {
		t.Fatalf("evicted %d rejoined %d, want 1 and 1", st.Evicted, st.Rejoined)
	}
	if last := st.Responders[len(st.Responders)-1]; last != 3 {
		t.Fatalf("final round responders %d, want 3 (all: %v)", last, st.Responders)
	}

	// Everyone who received the final aggregated model agrees bit-for-bit:
	// the rejoiner resynced through the replayed model, not a desynced
	// stream.
	ref := params[0].Flatten()
	for id := 1; id < 3; id++ {
		got := params[id].Flatten()
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("client %d element %d = %v, client 0 has %v — rejoiner desynced",
					id, i, got[i], ref[i])
			}
		}
	}
}
