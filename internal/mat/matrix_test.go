package mat

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewDenseDims(t *testing.T) {
	m := NewDense(3, 4)
	r, c := m.Dims()
	if r != 3 || c != 4 {
		t.Fatalf("Dims = %d,%d want 3,4", r, c)
	}
	if len(m.Data()) != 12 {
		t.Fatalf("backing length %d want 12", len(m.Data()))
	}
}

func TestAtSetAdd(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Fatalf("At(1,2) = %v want 5", m.At(1, 2))
	}
	m.Add(1, 2, 2.5)
	if m.At(1, 2) != 7.5 {
		t.Fatalf("Add failed: %v", m.At(1, 2))
	}
}

func TestRowSetRow(t *testing.T) {
	m := NewDense(2, 3)
	m.SetRow(1, []float64{1, 2, 3})
	if got := m.Row(1); got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("Row(1) = %v", got)
	}
	// Row is a view.
	m.Row(1)[0] = 9
	if m.At(1, 0) != 9 {
		t.Fatal("Row must alias backing store")
	}
}

func TestMulKnown(t *testing.T) {
	a := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := NewDenseData(3, 2, []float64{7, 8, 9, 10, 11, 12})
	c := Mul(a, b)
	want := NewDenseData(2, 2, []float64{58, 64, 139, 154})
	if !c.Equalish(want, 1e-12) {
		t.Fatalf("Mul = %v want %v", c, want)
	}
}

func TestMulTTo(t *testing.T) {
	a := NewDenseData(3, 2, []float64{1, 2, 3, 4, 5, 6})
	b := NewDenseData(3, 2, []float64{1, 0, 0, 1, 1, 1})
	got := NewDense(2, 2)
	MulTTo(got, a, b)
	want := Mul(a.T(), b)
	if !got.Equalish(want, 1e-12) {
		t.Fatalf("MulTTo = %v want %v", got, want)
	}
}

func TestMulBTTo(t *testing.T) {
	a := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := NewDenseData(4, 3, []float64{1, 0, 1, 0, 1, 0, 2, 2, 2, 1, 1, 1})
	got := NewDense(2, 4)
	MulBTTo(got, a, b)
	want := Mul(a, b.T())
	if !got.Equalish(want, 1e-12) {
		t.Fatalf("MulBTTo = %v want %v", got, want)
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		r := int(seed%5)*2 + 1
		c := int(seed%3) + 2
		if r < 0 {
			r = -r + 1
		}
		m := NewDense(r, c)
		for i := range m.Data() {
			m.Data()[i] = float64((int(seed)+i*7)%13) / 3
		}
		return m.T().T().Equalish(m, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulAssociativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		if seed < 0 {
			seed = -seed
		}
		n := int(seed%4) + 2
		mk := func(off int) *Dense {
			m := NewDense(n, n)
			for i := range m.Data() {
				m.Data()[i] = math.Sin(float64(i*3+off) + float64(seed%100))
			}
			return m
		}
		a, b, c := mk(1), mk(2), mk(3)
		left := Mul(Mul(a, b), c)
		right := Mul(a, Mul(b, c))
		return left.Equalish(right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestScaleAddScaledApply(t *testing.T) {
	m := NewDenseData(2, 2, []float64{1, 2, 3, 4})
	m.Scale(2)
	if m.At(1, 1) != 8 {
		t.Fatalf("Scale: %v", m)
	}
	b := NewDenseData(2, 2, []float64{1, 1, 1, 1})
	m.AddScaled(b, -2)
	if m.At(0, 0) != 0 || m.At(1, 1) != 6 {
		t.Fatalf("AddScaled: %v", m)
	}
	m.Apply(func(x float64) float64 { return x * x })
	if m.At(1, 1) != 36 {
		t.Fatalf("Apply: %v", m)
	}
}

func TestNormSumMaxAbs(t *testing.T) {
	m := NewDenseData(1, 3, []float64{3, -4, 0})
	if !almost(m.Norm(), 5, 1e-12) {
		t.Fatalf("Norm = %v", m.Norm())
	}
	if m.Sum() != -1 {
		t.Fatalf("Sum = %v", m.Sum())
	}
	if m.MaxAbs() != 4 {
		t.Fatalf("MaxAbs = %v", m.MaxAbs())
	}
}

func TestHadamard(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 2, 3, 4})
	b := NewDenseData(2, 2, []float64{5, 6, 7, 8})
	h := Hadamard(a, b)
	want := NewDenseData(2, 2, []float64{5, 12, 21, 32})
	if !h.Equalish(want, 0) {
		t.Fatalf("Hadamard = %v", h)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := NewDenseData(1, 2, []float64{1, 2})
	b := a.Clone()
	b.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone must not alias")
	}
}

func TestMulPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Mul(NewDense(2, 3), NewDense(2, 3))
}
