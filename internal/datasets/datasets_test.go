package datasets

import (
	"os"
	"testing"
)

// tinyScale keeps the quota machinery exercised while staying fast.
func tinyScale() Scale {
	return Scale{
		Name:             "tiny",
		IFTTTLabeled:     60,
		IFTTTVulnerable:  15,
		IFTTTUnlabeled:   20,
		HeteroLabeled:    60,
		HeteroVulnerable: 18,
		HeteroUnlabeled:  20,
		OnlineGraphs:     10,
		Homes:            20,
		RulesPerHome:     20,
		WordDim:          24,
		SentenceDim:      32,
	}
}

func TestBuildIFTTTQuotas(t *testing.T) {
	sc := tinyScale()
	d := BuildIFTTT(sc, 1)
	if len(d.Labeled) != sc.IFTTTLabeled {
		t.Fatalf("labeled %d want %d", len(d.Labeled), sc.IFTTTLabeled)
	}
	if got := d.Vulnerable(); got != sc.IFTTTVulnerable {
		t.Fatalf("vulnerable %d want %d", got, sc.IFTTTVulnerable)
	}
	if len(d.Unlabeled) != sc.IFTTTUnlabeled {
		t.Fatalf("unlabeled %d", len(d.Unlabeled))
	}
	min, max := d.NodeRange()
	if min < 2 || max > 50 {
		t.Fatalf("node range %d-%d outside [2,50]", min, max)
	}
	// Homogeneity: all labelled graphs word-space IFTTT rules.
	for _, g := range d.Labeled {
		for _, n := range g.Nodes {
			if n.Rule.Platform.String() != "IFTTT" {
				t.Fatal("IFTTT dataset contains foreign platform rules")
			}
		}
	}
}

func TestBuildHeteroMixesPlatforms(t *testing.T) {
	sc := tinyScale()
	d := BuildHetero(sc, 2)
	if got := d.Vulnerable(); got != sc.HeteroVulnerable {
		t.Fatalf("vulnerable %d want %d", got, sc.HeteroVulnerable)
	}
	platforms := map[string]bool{}
	for _, g := range d.Labeled {
		for _, n := range g.Nodes {
			platforms[n.Rule.Platform.String()] = true
		}
	}
	if len(platforms) < 3 {
		t.Fatalf("hetero dataset covers only %v", platforms)
	}
}

func TestShuffledDeterministic(t *testing.T) {
	sc := tinyScale()
	d := BuildIFTTT(sc, 3)
	a := d.Shuffled(9)
	b := d.Shuffled(9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("shuffle not deterministic")
		}
	}
	c := d.Shuffled(10)
	diff := false
	for i := range a {
		if a[i] != c[i] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds should differ")
	}
}

func TestBuildOnlineSamples(t *testing.T) {
	sc := tinyScale()
	samples, _ := BuildOnlineSamples(sc, 5)
	if len(samples) != sc.OnlineGraphs {
		t.Fatalf("sample count %d", len(samples))
	}
	attacked := 0
	for _, s := range samples {
		if s.Attacked {
			attacked++
		}
		if len(s.Log) == 0 {
			t.Fatal("empty log in online sample")
		}
	}
	if attacked != sc.OnlineGraphs/2 {
		t.Fatalf("attacked %d want %d", attacked, sc.OnlineGraphs/2)
	}
}

func TestActiveScaleEnv(t *testing.T) {
	old := os.Getenv("FEXIOT_SCALE")
	defer os.Setenv("FEXIOT_SCALE", old)
	os.Setenv("FEXIOT_SCALE", "paper")
	if Active().Name != "paper" {
		t.Fatal("FEXIOT_SCALE=paper not honoured")
	}
	os.Setenv("FEXIOT_SCALE", "")
	if Active().Name != "ci" {
		t.Fatal("default scale should be ci")
	}
	// Paper scale reproduces Table I exactly.
	p := PaperScale()
	if p.IFTTTLabeled != 6000 || p.IFTTTVulnerable != 1473 ||
		p.HeteroLabeled != 12758 || p.HeteroVulnerable != 3828 ||
		p.IFTTTUnlabeled != 10000 || p.HeteroUnlabeled != 19440 {
		t.Fatal("paper scale constants drifted from Table I")
	}
}
