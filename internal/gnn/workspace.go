package gnn

import (
	"sync"

	"fexiot/internal/autodiff"
	"fexiot/internal/graph"
	"fexiot/internal/mat"
)

// Workspace is the reusable inference scratch of one goroutine: a tape
// (with its arena of recycled buffers), a binder, and an embedding output
// slice. A long-lived worker — a serve.Engine worker, a stream refusion
// loop — holds one Workspace so its forward passes stop allocating;
// transient callers borrow one from the package pool via Embed/EmbedAll.
//
// A Workspace is NOT safe for concurrent use.
type Workspace struct {
	tape   *autodiff.Tape
	binder *autodiff.Binder
	emb    []float64
}

// NewWorkspace creates an inference workspace.
func NewWorkspace() *Workspace {
	t := autodiff.NewTape()
	return &Workspace{tape: t, binder: autodiff.Bind(t, nil)}
}

// Embed runs one forward pass and returns the graph embedding. The returned
// slice is workspace-owned and valid only until the next Embed call on this
// workspace; callers that retain it must copy.
func (ws *Workspace) Embed(m Model, g *graph.Graph) []float64 {
	ws.tape.Reset()
	ws.binder.Rebind(ws.tape, m.Params())
	out := m.Forward(ws.tape, ws.binder, g)
	ws.emb = append(ws.emb[:0], out.Value.Row(0)...)
	return ws.emb
}

// ArenaStats exposes the workspace tape's arena counters (tests).
func (ws *Workspace) ArenaStats() mat.ArenaStats { return ws.tape.ArenaStats() }

// wsPool recycles workspaces for callers without a long-lived one. Entries
// are pointers, so Get/Put do not allocate on the steady state.
var wsPool = sync.Pool{New: func() any { return NewWorkspace() }}

// Embed runs inference and returns the embedding as a caller-owned vector.
func Embed(m Model, g *graph.Graph) []float64 {
	ws := wsPool.Get().(*Workspace)
	out := append([]float64(nil), ws.Embed(m, g)...)
	wsPool.Put(ws)
	return out
}

// EmbedAll embeds a batch of graphs, fanning the independent forward
// passes out over the shared mat worker bound (inference reads the params
// and the mutex-guarded graph caches only, so passes are independent). Each
// goroutine borrows its own pooled workspace.
func EmbedAll(m Model, gs []*graph.Graph) [][]float64 {
	out := make([][]float64, len(gs))
	mat.ParallelFor(len(gs), func(i int) {
		out[i] = Embed(m, gs[i])
	})
	return out
}
