package mat

import (
	"fmt"
	"math"
	"sync"
	"testing"
)

// fillDet fills m with a deterministic, seed-dependent pattern including
// exact zeros (to exercise the zero-skip branches of the kernels).
func fillDet(m *Dense, seed int) {
	for i := range m.data {
		v := math.Sin(float64(i*7+seed)*0.37) * float64((i+seed)%11)
		if (i+seed)%13 == 0 {
			v = 0
		}
		m.data[i] = v
	}
}

// bitEqual reports exact bit-level equality of two matrices.
func bitEqual(a, b *Dense) bool {
	if a.rows != b.rows || a.cols != b.cols {
		return false
	}
	for i, v := range a.data {
		if math.Float64bits(v) != math.Float64bits(b.data[i]) {
			return false
		}
	}
	return true
}

// matmulShapes covers degenerate and non-divisible shapes: row/column
// vectors, sizes with no common factor with any worker count, and blocks
// that do not divide the row count evenly.
var matmulShapes = []struct{ m, k, n int }{
	{1, 1, 1},
	{1, 17, 1},
	{1, 5, 9},
	{9, 5, 1},
	{2, 3, 4},
	{7, 13, 11},
	{33, 17, 29},
	{64, 64, 64},
	{65, 31, 127},
	{128, 1, 128},
	{1, 128, 128},
}

// TestParallelMulToBitIdentical drives the row-block kernel through
// parallelRows with minWork 1 (so even tiny shapes split across workers)
// and asserts bit-identical output against the single-block serial run.
func TestParallelMulToBitIdentical(t *testing.T) {
	old := Parallelism()
	defer SetParallelism(old)
	for _, sh := range matmulShapes {
		a, b := NewDense(sh.m, sh.k), NewDense(sh.k, sh.n)
		fillDet(a, 1)
		fillDet(b, 2)
		serial := NewDense(sh.m, sh.n)
		mulToBlock(serial, a, b, 0, sh.m)
		for _, procs := range []int{2, 3, 8, 64} {
			SetParallelism(procs)
			got := NewDense(sh.m, sh.n)
			parallelRows(sh.m, 1, func(lo, hi int) { mulToBlock(got, a, b, lo, hi) })
			if !bitEqual(got, serial) {
				t.Fatalf("MulTo %dx%dx%d at parallelism %d differs from serial",
					sh.m, sh.k, sh.n, procs)
			}
		}
	}
}

// TestParallelMulTToBitIdentical checks the row-owned Aᵀ·B kernel against
// the cache-friendly k-outer serial kernel: the two walk memory in
// different orders but must accumulate every element identically.
func TestParallelMulTToBitIdentical(t *testing.T) {
	old := Parallelism()
	defer SetParallelism(old)
	for _, sh := range matmulShapes {
		a, b := NewDense(sh.k, sh.m), NewDense(sh.k, sh.n) // dst is m×n
		fillDet(a, 3)
		fillDet(b, 4)
		serial := NewDense(sh.m, sh.n)
		mulTToSerial(serial, a, b)
		for _, procs := range []int{2, 5, 16} {
			SetParallelism(procs)
			got := NewDense(sh.m, sh.n)
			parallelRows(sh.m, 1, func(lo, hi int) { mulTToBlock(got, a, b, lo, hi) })
			if !bitEqual(got, serial) {
				t.Fatalf("MulTTo %dx%dx%d at parallelism %d differs from serial",
					sh.m, sh.k, sh.n, procs)
			}
		}
	}
}

// TestParallelMulBTToBitIdentical does the same for A·Bᵀ.
func TestParallelMulBTToBitIdentical(t *testing.T) {
	old := Parallelism()
	defer SetParallelism(old)
	for _, sh := range matmulShapes {
		a, b := NewDense(sh.m, sh.k), NewDense(sh.n, sh.k) // dst is m×n
		fillDet(a, 5)
		fillDet(b, 6)
		serial := NewDense(sh.m, sh.n)
		mulBTToBlock(serial, a, b, 0, sh.m)
		for _, procs := range []int{2, 7, 32} {
			SetParallelism(procs)
			got := NewDense(sh.m, sh.n)
			parallelRows(sh.m, 1, func(lo, hi int) { mulBTToBlock(got, a, b, lo, hi) })
			if !bitEqual(got, serial) {
				t.Fatalf("MulBTTo %dx%dx%d at parallelism %d differs from serial",
					sh.m, sh.k, sh.n, procs)
			}
		}
	}
}

// TestPublicAPIParallelMatchesSerial exercises the public entry points on
// matrices large enough to cross the FLOP cutoff, comparing a run at
// parallelism 1 with a heavily parallel run bit-for-bit, together with the
// element-wise ops and transpose.
func TestPublicAPIParallelMatchesSerial(t *testing.T) {
	old := Parallelism()
	defer SetParallelism(old)
	a, b := NewDense(131, 67), NewDense(67, 93)
	fillDet(a, 7)
	fillDet(b, 8)

	run := func() (mul, mulT, mulBT, tr, ew *Dense) {
		mul = NewDense(131, 93)
		MulTo(mul, a, b)
		mulT = NewDense(67, 67)
		MulTTo(mulT, a, a)
		mulBT = NewDense(131, 131)
		MulBTTo(mulBT, a, a)
		tr = a.T()
		ew = a.Clone()
		ew.Scale(1.25)
		ew.AddScaled(a, -0.5)
		ew.Apply(func(x float64) float64 { return x * x })
		return
	}

	SetParallelism(1)
	s1, s2, s3, s4, s5 := run()
	SetParallelism(16)
	p1, p2, p3, p4, p5 := run()
	for i, pair := range []struct{ s, p *Dense }{
		{s1, p1}, {s2, p2}, {s3, p3}, {s4, p4}, {s5, p5},
	} {
		if !bitEqual(pair.s, pair.p) {
			t.Fatalf("op %d: parallel result differs from serial", i)
		}
	}
}

// TestMulToAliasPanics is the regression test for the aliased-destination
// bug: dst sharing backing memory with an input must panic instead of
// silently corrupting the product.
func TestMulToAliasPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic on aliased dst", name)
			}
		}()
		fn()
	}
	sq := NewDense(4, 4)
	fillDet(sq, 9)
	mustPanic("MulTo dst==a", func() { MulTo(sq, sq, NewDense(4, 4)) })
	mustPanic("MulTo dst==b", func() { MulTo(sq, NewDense(4, 4), sq) })
	mustPanic("MulTTo dst==b", func() { MulTTo(sq, NewDense(4, 4), sq) })
	mustPanic("MulBTTo dst==a", func() { MulBTTo(sq, sq, NewDense(4, 4)) })

	// Partial overlap through a shared backing array must also be caught.
	backing := make([]float64, 32)
	dst := NewDenseData(4, 4, backing[:16])
	a := NewDenseData(4, 4, backing[8:24])
	mustPanic("MulTo partial overlap", func() { MulTo(dst, a, NewDense(4, 4)) })

	// Distinct halves of one allocation do not overlap and must be fine.
	ok := NewDenseData(4, 4, backing[:16])
	c := NewDenseData(4, 4, backing[16:])
	MulTo(ok, c, NewDense(4, 4))

	// Inputs may alias each other (dst is what matters): A·A is legal.
	out := NewDense(4, 4)
	MulTo(out, sq, sq)
}

// TestPoolStress hammers the shared pool from many goroutines at once —
// the usage pattern of federated clients training concurrently. Each
// t.Parallel() subtest issues products through both parallelRows and the
// public MulTo entry point and checks them against references computed up
// front. The parent pins the knob via t.Cleanup (not defer) so it is only
// restored after every parallel subtest has finished.
func TestPoolStress(t *testing.T) {
	old := Parallelism()
	t.Cleanup(func() { SetParallelism(old) })
	SetParallelism(8)
	a, b := NewDense(96, 48), NewDense(48, 64)
	fillDet(a, 10)
	fillDet(b, 11)
	want := NewDense(96, 64)
	mulToBlock(want, a, b, 0, 96)
	// Big enough to cross the FLOP cutoff through the public API.
	bigA, bigB := NewDense(80, 80), NewDense(80, 80)
	fillDet(bigA, 12)
	fillDet(bigB, 13)
	bigWant := NewDense(80, 80)
	mulToBlock(bigWant, bigA, bigB, 0, 80)

	for g := 0; g < 8; g++ {
		g := g
		t.Run(fmt.Sprintf("worker-%d", g), func(t *testing.T) {
			t.Parallel()
			got := NewDense(96, 64)
			bigGot := NewDense(80, 80)
			for it := 0; it < 25; it++ {
				parallelRows(96, 1, func(lo, hi int) { mulToBlock(got, a, b, lo, hi) })
				if !bitEqual(got, want) {
					t.Fatalf("iteration %d: corrupted forced-parallel product", it)
				}
				MulTo(bigGot, bigA, bigB)
				if !bitEqual(bigGot, bigWant) {
					t.Fatalf("iteration %d: corrupted MulTo product", it)
				}
			}
		})
	}
}

// TestParallelForBoundsConcurrency checks that ParallelFor visits every
// index exactly once and never exceeds the configured parallelism.
func TestParallelForBoundsConcurrency(t *testing.T) {
	old := Parallelism()
	defer SetParallelism(old)
	SetParallelism(3)
	const n = 50
	visited := make([]int, n)
	var mu sync.Mutex
	inFlight, peak := 0, 0
	ParallelFor(n, func(i int) {
		mu.Lock()
		inFlight++
		if inFlight > peak {
			peak = inFlight
		}
		mu.Unlock()
		visited[i]++
		mu.Lock()
		inFlight--
		mu.Unlock()
	})
	for i, v := range visited {
		if v != 1 {
			t.Fatalf("index %d visited %d times", i, v)
		}
	}
	if peak > 3 {
		t.Fatalf("peak concurrency %d exceeds parallelism 3", peak)
	}
	// Serial degradation.
	SetParallelism(1)
	order := make([]int, 0, 5)
	ParallelFor(5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial ParallelFor out of order: %v", order)
		}
	}
}

// TestSetParallelismClamps checks the knob clamps to a sane floor.
func TestSetParallelismClamps(t *testing.T) {
	old := Parallelism()
	defer SetParallelism(old)
	SetParallelism(-4)
	if Parallelism() != 1 {
		t.Fatalf("Parallelism() = %d want 1", Parallelism())
	}
	SetParallelism(6)
	if Parallelism() != 6 {
		t.Fatalf("Parallelism() = %d want 6", Parallelism())
	}
}
