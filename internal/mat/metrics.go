package mat

import (
	"sync/atomic"

	"fexiot/internal/obs"
)

// kernelMetrics are the package-level observability handles of the dense
// kernels. The whole struct sits behind one atomic pointer: the disabled
// state is a nil pointer, so the per-operation cost of instrumentation when
// no registry is installed is a single atomic load and branch — unmeasurable
// next to even the smallest matrix product (see BenchmarkMatMulParallel).
type kernelMetrics struct {
	flops    *obs.Counter // fexiot_mat_flops_total
	serial   *obs.Counter // fexiot_mat_dispatch_total{mode="serial"}
	parallel *obs.Counter // fexiot_mat_dispatch_total{mode="parallel"}
	inflight *obs.Gauge   // fexiot_mat_pool_inflight_blocks
}

var kmetrics atomic.Pointer[kernelMetrics]

// InstrumentKernels installs observability for the dense kernels into r:
// FLOPs executed by the matrix products, serial vs parallel dispatch
// decisions, and worker-pool occupancy. A nil registry uninstalls the
// instrumentation, restoring the zero-overhead fast path. The handles are
// process-global because the worker pool is; installing a second registry
// replaces the first.
func InstrumentKernels(r *obs.Registry) {
	if r == nil {
		kmetrics.Store(nil)
		return
	}
	dispatch := r.CounterVec("fexiot_mat_dispatch_total",
		"dense-kernel dispatch decisions by execution mode", "mode")
	kmetrics.Store(&kernelMetrics{
		flops: r.Counter("fexiot_mat_flops_total",
			"floating-point operations executed by the matrix product kernels"),
		serial:   dispatch.With("serial"),
		parallel: dispatch.With("parallel"),
		inflight: r.Gauge("fexiot_mat_pool_inflight_blocks",
			"row blocks currently executing on the worker pool"),
	})
}

// countFLOPs tallies one product's floating-point operations when
// instrumentation is installed.
func countFLOPs(n int) {
	if km := kmetrics.Load(); km != nil {
		km.flops.Add(int64(n))
	}
}
