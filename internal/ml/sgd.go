package ml

import (
	"fexiot/internal/mat"
	"fexiot/internal/rng"
)

// SGDClassifier is a linear model trained with stochastic gradient descent
// on logistic loss with L2 regularisation — the scikit-learn component each
// FexIoT client uses to classify federated graph embeddings as normal or
// vulnerable (§III-B1), and the linear explanation model g(z') = Wz' that
// kernel SHAP regresses against (Eq. 6).
type SGDClassifier struct {
	Epochs int
	LR     float64
	L2     float64
	Seed   int64

	// ClassWeights rebalances the loss per class {w0, w1}; nil = uniform.
	ClassWeights []float64

	w []float64
	b float64
}

// NewSGDClassifier creates a classifier with sensible defaults.
func NewSGDClassifier(epochs int, lr float64, seed int64) *SGDClassifier {
	return &SGDClassifier{Epochs: epochs, LR: lr, L2: 1e-4, Seed: seed}
}

// Fit trains with SGD over shuffled epochs.
func (c *SGDClassifier) Fit(x [][]float64, y []int) {
	if len(x) == 0 {
		return
	}
	d := len(x[0])
	c.w = make([]float64, d)
	c.b = 0
	r := rng.New(c.Seed)
	order := make([]int, len(x))
	for i := range order {
		order[i] = i
	}
	for e := 0; e < c.Epochs; e++ {
		r.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		// Step-size decay keeps late epochs stable.
		lr := c.LR / (1 + 0.05*float64(e))
		for _, i := range order {
			p := mat.Sigmoid(mat.Dot(c.w, x[i]) + c.b)
			grad := p - float64(y[i])
			if c.ClassWeights != nil {
				grad *= c.ClassWeights[y[i]]
			}
			for j, xj := range x[i] {
				c.w[j] -= lr * (grad*xj + c.L2*c.w[j])
			}
			c.b -= lr * grad
		}
	}
}

// Score returns the positive-class probability.
func (c *SGDClassifier) Score(q []float64) float64 {
	if c.w == nil {
		return 0.5
	}
	return mat.Sigmoid(mat.Dot(c.w, q) + c.b)
}

// Predict thresholds Score at 0.5.
func (c *SGDClassifier) Predict(q []float64) int {
	if c.Score(q) >= 0.5 {
		return 1
	}
	return 0
}

// Weights exposes the linear coefficients (used by the SHAP bridge, which
// reads φ_j = w_j (x_j − E[x_j]) off a linear model).
func (c *SGDClassifier) Weights() ([]float64, float64) { return c.w, c.b }

// Clone returns a deep copy of the classifier, including the fitted
// weights. Serving snapshots freeze classifier state with it so a later
// Fit on the original can never reach into an in-flight request.
func (c *SGDClassifier) Clone() *SGDClassifier {
	out := *c
	out.w = append([]float64(nil), c.w...)
	out.ClassWeights = append([]float64(nil), c.ClassWeights...)
	return &out
}
