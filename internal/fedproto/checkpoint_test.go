package fedproto

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"fexiot/internal/autodiff"
	"fexiot/internal/chaos"
)

// testCheckpoint builds a small but fully-populated snapshot.
func testCheckpoint(round int) *Checkpoint {
	p := scriptParams()
	return &Checkpoint{
		Round:   round,
		Shapes:  [][][2]int{{{1, 2}}, {{1, 2}}},
		Names:   [][]string{{"l0.w"}, {"l1.w"}},
		Global:  EncodeLayers(p, []int{0, 1}, zeroNorms(p)),
		Strikes: map[int]int{1: 2},
		Sizes:   map[int]int{0: 10, 1: 10},
		Stats:   ServerStats{RoundsCompleted: round, Responders: []int{2, 2}},
	}
}

// corrupt flips one byte at offset from the end of the file.
func corrupt(t *testing.T, path string, fromEnd int) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-fromEnd] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointRotationKeepsPrev: the second save retires the first
// snapshot to .prev, and both files load.
func TestCheckpointRotationKeepsPrev(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fed.ckpt")
	if err := SaveCheckpoint(path, testCheckpoint(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + PrevSuffix); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("first save created a .prev: %v", err)
	}
	if err := SaveCheckpoint(path, testCheckpoint(2)); err != nil {
		t.Fatal(err)
	}
	latest, err := LoadCheckpoint(path)
	if err != nil || latest.Round != 2 {
		t.Fatalf("latest = %+v, %v; want round 2", latest, err)
	}
	prev, err := LoadCheckpoint(path + PrevSuffix)
	if err != nil || prev.Round != 1 {
		t.Fatalf("prev = %+v, %v; want round 1", prev, err)
	}
	ck, from, err := LoadLatestCheckpoint(path)
	if err != nil || from != path || ck.Round != 2 {
		t.Fatalf("LoadLatest = round %d from %q, %v; want 2 from latest", ck.Round, from, err)
	}
}

// TestCheckpointCorruptionMatrix is the satellite matrix: bit-flip in the
// body, bit-flip in the footer, truncation, a footer-less legacy file, and
// both-files-corrupt — every case either rolls back to the previous good
// snapshot or legacy-loads, and none ever panics.
func TestCheckpointCorruptionMatrix(t *testing.T) {
	save2 := func(t *testing.T) string {
		path := filepath.Join(t.TempDir(), "fed.ckpt")
		if err := SaveCheckpoint(path, testCheckpoint(1)); err != nil {
			t.Fatal(err)
		}
		if err := SaveCheckpoint(path, testCheckpoint(2)); err != nil {
			t.Fatal(err)
		}
		return path
	}

	t.Run("bit-flip in body rolls back", func(t *testing.T) {
		path := save2(t)
		corrupt(t, path, ckptFooterSize+10) // inside the gob body
		if _, err := LoadCheckpoint(path); !errors.Is(err, ErrCheckpointCorrupt) {
			t.Fatalf("corrupt body loaded: %v", err)
		}
		ck, from, err := LoadLatestCheckpoint(path)
		if err != nil || ck.Round != 1 || from != path+PrevSuffix {
			t.Fatalf("rollback = round %d from %q, %v; want 1 from .prev", ck.Round, from, err)
		}
	})

	t.Run("bit-flip in hash footer rolls back", func(t *testing.T) {
		path := save2(t)
		corrupt(t, path, len(ckptMagic)+5) // inside the sha256 footer
		if _, err := LoadCheckpoint(path); !errors.Is(err, ErrCheckpointCorrupt) {
			t.Fatalf("corrupt footer loaded: %v", err)
		}
		ck, _, err := LoadLatestCheckpoint(path)
		if err != nil || ck.Round != 1 {
			t.Fatalf("rollback = %+v, %v; want round 1", ck, err)
		}
	})

	t.Run("truncation rolls back", func(t *testing.T) {
		path := save2(t)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadCheckpoint(path); !errors.Is(err, ErrCheckpointCorrupt) {
			t.Fatalf("truncated file loaded: %v", err)
		}
		ck, _, err := LoadLatestCheckpoint(path)
		if err != nil || ck.Round != 1 {
			t.Fatalf("rollback = %+v, %v; want round 1", ck, err)
		}
	})

	t.Run("legacy footer-less file loads", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "fed.ckpt")
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(testCheckpoint(5)); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		ck, err := LoadCheckpoint(path)
		if err != nil || ck.Round != 5 {
			t.Fatalf("legacy load = %+v, %v; want round 5", ck, err)
		}
		ck, from, err := LoadLatestCheckpoint(path)
		if err != nil || ck.Round != 5 || from != path {
			t.Fatalf("LoadLatest legacy = round %d from %q, %v", ck.Round, from, err)
		}
	})

	t.Run("both corrupt errors without panic", func(t *testing.T) {
		path := save2(t)
		corrupt(t, path, ckptFooterSize+10)
		corrupt(t, path+PrevSuffix, ckptFooterSize+10)
		_, _, err := LoadLatestCheckpoint(path)
		if !errors.Is(err, ErrCheckpointCorrupt) {
			t.Fatalf("both-corrupt = %v, want ErrCheckpointCorrupt", err)
		}
		if errors.Is(err, fs.ErrNotExist) {
			t.Fatal("corruption misreported as a missing file")
		}
	})

	t.Run("missing files are a fresh federation", func(t *testing.T) {
		_, _, err := LoadLatestCheckpoint(filepath.Join(t.TempDir(), "none"))
		if !errors.Is(err, fs.ErrNotExist) {
			t.Fatalf("missing = %v, want fs.ErrNotExist", err)
		}
	})
}

// TestCheckpointTransientDiskFaultRetried: a flaky disk that fails a few
// operations is ridden out by the server's bounded retry — the round's
// checkpoint lands despite the injected faults.
func TestCheckpointTransientDiskFaultRetried(t *testing.T) {
	ffs := chaos.NewFaultFS(nil)
	restore := SetCheckpointFS(ffs)
	defer restore()

	path := filepath.Join(t.TempDir(), "fed.ckpt")
	srv := NewServer(ServerConfig{CheckpointPath: path, NumLayers: 2})
	srv.mu.Lock()
	srv.global = testCheckpoint(3).Global
	srv.shapes = [][][2]int{{{1, 2}}, {{1, 2}}}
	srv.names = [][]string{{"l0.w"}, {"l1.w"}}
	srv.mu.Unlock()

	ffs.FailWrites(2) // two attempts die mid-write, the third lands
	if err := srv.ckptRetry(3); err != nil {
		t.Fatalf("retry did not ride out the flaky disk: %v", err)
	}
	ck, err := LoadCheckpoint(path)
	if err != nil || ck.Round != 3 {
		t.Fatalf("checkpoint after retry = %+v, %v", ck, err)
	}

	// A disk that stays dead exhausts the budget and reports the fault.
	ffs.FailWrites(1000)
	if err := srv.ckptRetry(4); !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("dead disk error = %v, want ErrInjected", err)
	}
}

// TestServerResumesFromPrevAfterCorruptLatest is the kill/corrupt
// acceptance e2e: a checkpointing federation is stopped, its latest
// snapshot bit-flipped, and the restarted server resumes from the previous
// good snapshot — finishing the federation instead of failing startup.
func TestServerResumesFromPrevAfterCorruptLatest(t *testing.T) {
	const nClients, rounds = 2, 4
	ckpt := filepath.Join(t.TempDir(), "fed.ckpt")
	addr := freeAddr(t)
	cfg := func(addr string) ServerConfig {
		return ServerConfig{
			Addr: addr, Clients: nClients, Rounds: rounds, NumLayers: 2,
			Quorum: 1, RoundTimeout: 5 * time.Second,
			Eps1: 0.4, Eps2: 0.95,
			CheckpointPath: ckpt, CheckpointEvery: 1,
		}
	}

	srv1 := NewServer(cfg(addr))
	done1 := make(chan error, 1)
	go func() { _, err := srv1.Run(context.Background()); done1 <- err }()

	params := make([]*autodiff.ParamSet, nClients)
	errs := make([]error, nClients)
	var wg sync.WaitGroup
	for id := 0; id < nClients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := scriptParams()
			params[id] = p
			_, errs[id] = RunClientSession(context.Background(), ClientConfig{
				Addr: addr, ID: id, DataSize: 10,
				InitialBackoff: 10 * time.Millisecond,
				MaxBackoff:     50 * time.Millisecond,
				MaxAttempts:    200,
				OpTimeout:      5 * time.Second,
				Seed:           int64(id),
			}, p, func(round int) map[int]float64 {
				time.Sleep(20 * time.Millisecond)
				addDelta(p, float64(id+1)*0.1)
				return zeroNorms(p)
			})
		}(id)
	}

	// Let at least two rounds close so both .ckpt and .ckpt.prev exist.
	deadline := time.Now().Add(15 * time.Second)
	for srv1.Stats().RoundsCompleted < 2 {
		if time.Now().After(deadline) {
			t.Fatal("federation never reached round 2")
		}
		time.Sleep(5 * time.Millisecond)
	}
	srv1.Stop()
	select {
	case <-done1:
	case <-time.After(10 * time.Second):
		t.Fatal("stopped server did not return")
	}

	// Corrupt the latest snapshot's body: the restart must fall back to
	// .prev (one round earlier) instead of dying on startup.
	if _, err := os.Stat(ckpt + PrevSuffix); err != nil {
		t.Fatalf(".prev missing before corruption: %v", err)
	}
	corrupt(t, ckpt, ckptFooterSize+10)
	prevCk, err := LoadCheckpoint(ckpt + PrevSuffix)
	if err != nil {
		t.Fatalf(".prev unreadable: %v", err)
	}

	srv2 := NewServer(cfg(addr))
	done2 := make(chan error, 1)
	go func() { _, err := srv2.Run(context.Background()); done2 <- err }()

	wg.Wait()
	select {
	case err := <-done2:
		if err != nil {
			t.Fatalf("resumed server: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("resumed server did not finish")
	}
	for id, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", id, err)
		}
	}
	// The resume point must be the previous good snapshot, so the restarted
	// server replays the round the corrupted checkpoint had covered.
	srv2.mu.Lock()
	resumed := srv2.startRound
	srv2.mu.Unlock()
	if resumed != prevCk.Round {
		t.Fatalf("resumed at round %d, want .prev's round %d", resumed, prevCk.Round)
	}
	// Both clients converged to identical models — the replayed round kept
	// the federation consistent.
	a, b := params[0].Flatten(), params[1].Flatten()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("clients diverged at element %d: %v vs %v", i, a[i], b[i])
		}
	}
}
