package autodiff

import (
	"math"
	"testing"

	"fexiot/internal/mat"
	"fexiot/internal/rng"
)

// numericGrad computes the central finite-difference gradient of loss(w)
// with respect to every element of w.
func numericGrad(w *mat.Dense, loss func() float64) *mat.Dense {
	const h = 1e-5
	r, c := w.Dims()
	g := mat.NewDense(r, c)
	d := w.Data()
	for i := range d {
		orig := d[i]
		d[i] = orig + h
		up := loss()
		d[i] = orig - h
		down := loss()
		d[i] = orig
		g.Data()[i] = (up - down) / (2 * h)
	}
	return g
}

// checkGrad runs forward() once for the analytic gradient and compares it
// against finite differences for parameter w.
func checkGrad(t *testing.T, name string, w *mat.Dense, forward func() (*Tape, *Node, *Node)) {
	t.Helper()
	tape, wNode, loss := forward()
	tape.Backward(loss)
	analytic := wNode.Grad
	numeric := numericGrad(w, func() float64 {
		_, _, l := forward()
		return l.Value.At(0, 0)
	})
	if analytic == nil {
		t.Fatalf("%s: no gradient computed", name)
	}
	if !analytic.Equalish(numeric, 1e-4) {
		t.Fatalf("%s: analytic %v vs numeric %v", name, analytic, numeric)
	}
}

func TestMatMulGrad(t *testing.T) {
	g := rng.New(1)
	w := g.Gaussian(3, 2, 1)
	x := g.Gaussian(4, 3, 1)
	checkGrad(t, "matmul", w, func() (*Tape, *Node, *Node) {
		tape := NewTape()
		wn := tape.Param(w)
		xn := tape.Constant(x)
		y := tape.MatMul(xn, wn)
		sq := tape.Hadamard(y, y)
		return tape, wn, tape.SumAll(sq)
	})
}

func TestSpMMGrad(t *testing.T) {
	g := rng.New(2)
	w := g.Gaussian(3, 2, 1)
	adj := mat.NewCSR(3, 3,
		[]int{0, 0, 1, 2, 2}, []int{0, 1, 2, 0, 2},
		[]float64{0.5, 0.5, 1, 0.3, 0.7})
	checkGrad(t, "spmm", w, func() (*Tape, *Node, *Node) {
		tape := NewTape()
		wn := tape.Param(w)
		y := tape.SpMM(adj, wn)
		sq := tape.Hadamard(y, y)
		return tape, wn, tape.SumAll(sq)
	})
}

func TestActivationGrads(t *testing.T) {
	acts := map[string]func(*Tape, *Node) *Node{
		"relu":    func(tp *Tape, n *Node) *Node { return tp.ReLU(n) },
		"sigmoid": func(tp *Tape, n *Node) *Node { return tp.Sigmoid(n) },
		"tanh":    func(tp *Tape, n *Node) *Node { return tp.Tanh(n) },
		"leaky":   func(tp *Tape, n *Node) *Node { return tp.LeakyReLU(n, 0.1) },
	}
	for name, act := range acts {
		g := rng.New(3)
		w := g.Gaussian(2, 3, 1)
		// Nudge away from the ReLU kink for stable finite differences.
		w.Apply(func(x float64) float64 {
			if math.Abs(x) < 0.05 {
				return x + 0.1
			}
			return x
		})
		checkGrad(t, name, w, func() (*Tape, *Node, *Node) {
			tape := NewTape()
			wn := tape.Param(w)
			y := act(tape, wn)
			sq := tape.Hadamard(y, y)
			return tape, wn, tape.SumAll(sq)
		})
	}
}

func TestReductionGrads(t *testing.T) {
	g := rng.New(4)
	w := g.Gaussian(4, 3, 1)
	checkGrad(t, "meanrows", w, func() (*Tape, *Node, *Node) {
		tape := NewTape()
		wn := tape.Param(w)
		m := tape.MeanRows(wn)
		sq := tape.Hadamard(m, m)
		return tape, wn, tape.SumAll(sq)
	})
	checkGrad(t, "sumrows", w, func() (*Tape, *Node, *Node) {
		tape := NewTape()
		wn := tape.Param(w)
		m := tape.SumRows(wn)
		sq := tape.Hadamard(m, m)
		return tape, wn, tape.SumAll(sq)
	})
}

func TestAddRowBroadcastGrad(t *testing.T) {
	g := rng.New(5)
	bias := g.Gaussian(1, 3, 1)
	x := g.Gaussian(4, 3, 1)
	checkGrad(t, "bias", bias, func() (*Tape, *Node, *Node) {
		tape := NewTape()
		bn := tape.Param(bias)
		xn := tape.Constant(x)
		y := tape.AddRowBroadcast(xn, bn)
		sq := tape.Hadamard(y, y)
		return tape, bn, tape.SumAll(sq)
	})
}

func TestConcatAndGatherGrads(t *testing.T) {
	g := rng.New(6)
	w := g.Gaussian(4, 2, 1)
	other := g.Gaussian(4, 3, 1)
	checkGrad(t, "concat", w, func() (*Tape, *Node, *Node) {
		tape := NewTape()
		wn := tape.Param(w)
		on := tape.Constant(other)
		y := tape.ConcatCols(wn, on)
		sq := tape.Hadamard(y, y)
		return tape, wn, tape.SumAll(sq)
	})
	checkGrad(t, "gather", w, func() (*Tape, *Node, *Node) {
		tape := NewTape()
		wn := tape.Param(w)
		y := tape.GatherRows(wn, []int{0, 2, 2, 3})
		sq := tape.Hadamard(y, y)
		return tape, wn, tape.SumAll(sq)
	})
}

func TestSoftmaxCrossEntropyGrad(t *testing.T) {
	g := rng.New(7)
	w := g.Gaussian(5, 3, 1)
	labels := []int{0, 2, 1, 1, 0}
	weights := []float64{1, 2, 0.5}
	checkGrad(t, "xent", w, func() (*Tape, *Node, *Node) {
		tape := NewTape()
		wn := tape.Param(w)
		return tape, wn, tape.SoftmaxCrossEntropy(wn, labels, weights)
	})
}

func TestBCEWithLogitsGrad(t *testing.T) {
	g := rng.New(8)
	w := g.Gaussian(6, 1, 1)
	targets := []float64{0, 1, 1, 0, 1, 0}
	checkGrad(t, "bce", w, func() (*Tape, *Node, *Node) {
		tape := NewTape()
		wn := tape.Param(w)
		return tape, wn, tape.BCEWithLogits(wn, targets, nil)
	})
}

func TestContrastiveLossGradAndValues(t *testing.T) {
	g := rng.New(9)
	za := g.Gaussian(1, 4, 1)
	zbRaw := g.Gaussian(1, 4, 1)
	for _, diff := range []bool{false, true} {
		checkGrad(t, "contrastive", za, func() (*Tape, *Node, *Node) {
			tape := NewTape()
			an := tape.Param(za)
			bn := tape.Constant(zbRaw)
			return tape, an, tape.ContrastiveLoss(an, bn, diff, 2.0)
		})
	}
	// Same class: loss is squared distance.
	tape := NewTape()
	an := tape.Constant(za)
	bn := tape.Constant(zbRaw)
	l := tape.ContrastiveLoss(an, bn, false, 2.0)
	want := math.Pow(mat.Dist2(za.Row(0), zbRaw.Row(0)), 2)
	if math.Abs(l.Value.At(0, 0)-want) > 1e-10 {
		t.Fatalf("same-class loss %v want %v", l.Value.At(0, 0), want)
	}
	// Different class, far apart beyond margin: loss clamps to 0.
	far := za.Clone().Apply(func(x float64) float64 { return x + 100 })
	tape = NewTape()
	l = tape.ContrastiveLoss(tape.Constant(za), tape.Constant(far), true, 2.0)
	if l.Value.At(0, 0) != 0 {
		t.Fatalf("far different-class loss should clamp to 0, got %v", l.Value.At(0, 0))
	}
}

func TestMSEGrad(t *testing.T) {
	g := rng.New(10)
	w := g.Gaussian(3, 2, 1)
	target := g.Gaussian(3, 2, 1)
	checkGrad(t, "mse", w, func() (*Tape, *Node, *Node) {
		tape := NewTape()
		wn := tape.Param(w)
		return tape, wn, tape.MSE(wn, target)
	})
}

func TestParamReuseAccumulates(t *testing.T) {
	// Using the same parameter node twice must sum gradient contributions.
	w := mat.NewDenseData(1, 1, []float64{3})
	tape := NewTape()
	wn := tape.Param(w)
	y := tape.Hadamard(wn, wn) // w²
	loss := tape.SumAll(y)
	tape.Backward(loss)
	if got := wn.Grad.At(0, 0); math.Abs(got-6) > 1e-12 {
		t.Fatalf("d(w²)/dw = %v want 6", got)
	}
}

func TestDropout(t *testing.T) {
	x := mat.NewDenseData(1, 4, []float64{1, 2, 3, 4})
	mask := mat.NewDenseData(1, 4, []float64{1, 0, 1, 0})
	tape := NewTape()
	xn := tape.Param(x)
	y := tape.Dropout(xn, mask, 0.5)
	if y.Value.At(0, 0) != 2 || y.Value.At(0, 1) != 0 {
		t.Fatalf("dropout forward: %v", y.Value)
	}
	loss := tape.SumAll(y)
	tape.Backward(loss)
	if xn.Grad.At(0, 0) != 2 || xn.Grad.At(0, 1) != 0 {
		t.Fatalf("dropout grad: %v", xn.Grad)
	}
	// p=0 is identity.
	tape2 := NewTape()
	xn2 := tape2.Param(x)
	if tape2.Dropout(xn2, mask, 0) != xn2 {
		t.Fatal("dropout with p=0 must be identity")
	}
}

func TestBackwardRequiresScalar(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-scalar Backward")
		}
	}()
	tape := NewTape()
	n := tape.Param(mat.NewDense(2, 2))
	tape.Backward(n)
}

func TestMaxRowsGradAndForward(t *testing.T) {
	g := rng.New(11)
	w := g.Gaussian(4, 3, 1)
	// Keep entries well separated so the argmax is stable under the
	// finite-difference probe.
	w.Apply(func(x float64) float64 { return x * 3 })
	checkGrad(t, "maxrows", w, func() (*Tape, *Node, *Node) {
		tape := NewTape()
		wn := tape.Param(w)
		m := tape.MaxRows(wn)
		sq := tape.Hadamard(m, m)
		return tape, wn, tape.SumAll(sq)
	})
	// Forward correctness.
	x := mat.NewDenseData(3, 2, []float64{1, 9, 5, 2, 3, 4})
	tape := NewTape()
	out := tape.MaxRows(tape.Constant(x))
	if out.Value.At(0, 0) != 5 || out.Value.At(0, 1) != 9 {
		t.Fatalf("MaxRows = %v", out.Value)
	}
}

func TestScatterRowsGradAndForward(t *testing.T) {
	g := rng.New(12)
	w := g.Gaussian(2, 3, 1)
	checkGrad(t, "scatter", w, func() (*Tape, *Node, *Node) {
		tape := NewTape()
		wn := tape.Param(w)
		sc := tape.ScatterRows(wn, []int{3, 1}, 5)
		sq := tape.Hadamard(sc, sc)
		return tape, wn, tape.SumAll(sq)
	})
	// Forward: rows land at the right indices, rest zero.
	x := mat.NewDenseData(1, 2, []float64{7, 8})
	tape := NewTape()
	out := tape.ScatterRows(tape.Constant(x), []int{2}, 4)
	if out.Value.At(2, 0) != 7 || out.Value.At(2, 1) != 8 {
		t.Fatalf("scatter misplaced: %v", out.Value)
	}
	if out.Value.At(0, 0) != 0 || out.Value.At(3, 1) != 0 {
		t.Fatal("scatter should zero-fill other rows")
	}
}

func TestAddSubScaleGrads(t *testing.T) {
	g := rng.New(13)
	w := g.Gaussian(2, 2, 1)
	other := g.Gaussian(2, 2, 1)
	checkGrad(t, "add", w, func() (*Tape, *Node, *Node) {
		tape := NewTape()
		wn := tape.Param(w)
		on := tape.Constant(other)
		y := tape.Add(wn, on)
		return tape, wn, tape.SumAll(tape.Hadamard(y, y))
	})
	checkGrad(t, "sub", w, func() (*Tape, *Node, *Node) {
		tape := NewTape()
		wn := tape.Param(w)
		on := tape.Constant(other)
		y := tape.Sub(on, wn)
		return tape, wn, tape.SumAll(tape.Hadamard(y, y))
	})
	checkGrad(t, "scale", w, func() (*Tape, *Node, *Node) {
		tape := NewTape()
		wn := tape.Param(w)
		y := tape.Scale(wn, -2.5)
		return tape, wn, tape.SumAll(tape.Hadamard(y, y))
	})
	checkGrad(t, "addconst", w, func() (*Tape, *Node, *Node) {
		tape := NewTape()
		wn := tape.Param(w)
		y := tape.AddConst(wn, 1.7)
		return tape, wn, tape.SumAll(tape.Hadamard(y, y))
	})
}
