package fusion

import (
	"fmt"
	"strings"
	"testing"

	"fexiot/internal/embed"
	"fexiot/internal/eventlog"
	"fexiot/internal/graph"
	"fexiot/internal/rules"
)

// fingerprint serialises everything the downstream learners read from a
// graph — node order, features, spaces, rule identities, edge list, label,
// tags — so two byte-identical graphs produce equal strings.
func fingerprint(g *graph.Graph) string {
	var b strings.Builder
	fmt.Fprintf(&b, "id=%s online=%v label=%v tags=%v\n", g.ID, g.Online, g.Label, g.Tags)
	for i, n := range g.Nodes {
		id := "<anomaly>"
		if n.Rule != nil {
			id = n.Rule.ID
		}
		fmt.Fprintf(&b, "node %d rule=%s space=%d feat=%x\n", i, id, n.Space, n.Feature)
	}
	for _, e := range g.Edges {
		fmt.Fprintf(&b, "edge %d->%d kind=%d\n", e.From, e.To, e.Kind)
	}
	return b.String()
}

// anomalousLog simulates a home then appends unexplained commands and
// state changes for several distinct device instances — enough anomaly
// nodes that map-ordered emission would scramble the graph between runs.
func anomalousLog(deployed []*rules.Rule) eventlog.Log {
	log := eventlog.NewSimulator(deployed, 17).Run(600)
	t := int64(700)
	for i, inst := range []struct{ room, dev string }{
		{"kitchen", "light"}, {"bedroom", "heater"}, {"garage", "door"},
		{"livingroom", "fan"}, {"bathroom", "valve"},
	} {
		// Unexplained command: no RuleID claims it.
		log = append(log, eventlog.Event{
			Time: t + int64(i), Device: inst.dev, Room: inst.room,
			Channel: rules.ChanPower, Value: "on", Kind: eventlog.KindCommand,
		})
		// Unexplained state change: no command within the 2s window.
		log = append(log, eventlog.Event{
			Time: t + 100 + int64(i), Device: inst.dev, Room: inst.room,
			Channel: rules.ChanPower, Value: "off", Kind: eventlog.KindState,
		})
	}
	return log
}

// TestBuildOnlineByteIdenticalOver100Runs pins the online fusion path
// against map-iteration-order nondeterminism: rebuilding the same graph
// from the same inputs 100 times — each on a fresh builder so graph IDs
// and RNG state match — must yield byte-identical node/edge/feature
// layouts every time.
func TestBuildOnlineByteIdenticalOver100Runs(t *testing.T) {
	deployed := rules.NewGenerator(9, rules.Archetypes()[0], "h-").RuleSet(18)
	log := anomalousLog(deployed)

	build := func() *graph.Graph {
		enc := embed.NewEncoder(24, 32)
		b := NewBuilder(7, enc)
		return b.BuildOnline(deployed, log)
	}
	ref := build()
	if ref.N() == 0 {
		t.Fatal("online graph is empty; fixture does not exercise fusion")
	}
	anomalies := 0
	for _, n := range ref.Nodes {
		if n.Rule == nil {
			anomalies++
		}
	}
	if anomalies < 3 {
		t.Fatalf("only %d anomaly nodes; fixture does not exercise the sorted emission path", anomalies)
	}
	want := fingerprint(ref)
	for run := 1; run < 100; run++ {
		if got := fingerprint(build()); got != want {
			t.Fatalf("run %d produced a different graph:\n--- want\n%s\n--- got\n%s",
				run, clip(want), clip(got))
		}
	}
}

// TestOfflineByteIdenticalOver100Runs covers the offline construction path
// with the same pin.
func TestOfflineByteIdenticalOver100Runs(t *testing.T) {
	pool := MultiHomePool(3, 10, 15, nil)
	build := func() *graph.Graph {
		enc := embed.NewEncoder(24, 32)
		b := NewBuilder(7, enc)
		return b.Offline(pool, 12)
	}
	want := fingerprint(build())
	for run := 1; run < 100; run++ {
		if got := fingerprint(build()); got != want {
			t.Fatalf("run %d produced a different offline graph", run)
		}
	}
}

func clip(s string) string {
	if len(s) > 2000 {
		return s[:2000] + "…"
	}
	return s
}
