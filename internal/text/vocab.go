// Package text implements the lightweight natural-language layer FexIoT
// needs to process smart-home automation rule descriptions: tokenisation,
// lemmatisation, part-of-speech tagging and the extraction of the linguistic
// elements (root verbs, direct objects, nominal subjects) described in
// §III-A1 of the paper. It plays the role spaCy plays in the original
// system, scoped to the trigger-action rule language of IoT platforms.
package text

// POS is a coarse part-of-speech tag.
type POS int

// Coarse POS categories, modelled on the Universal POS tag set subset that
// rule sentences actually use.
const (
	Noun POS = iota
	Verb
	Adjective
	Adverb
	Determiner
	Preposition
	Pronoun
	Conjunction
	Auxiliary
	Particle
	Number
	Interjection
	Other
)

// String returns the human-readable tag name.
func (p POS) String() string {
	switch p {
	case Noun:
		return "NOUN"
	case Verb:
		return "VERB"
	case Adjective:
		return "ADJ"
	case Adverb:
		return "ADV"
	case Determiner:
		return "DET"
	case Preposition:
		return "ADP"
	case Pronoun:
		return "PRON"
	case Conjunction:
		return "CCONJ"
	case Auxiliary:
		return "AUX"
	case Particle:
		return "PART"
	case Number:
		return "NUM"
	case Interjection:
		return "INTJ"
	default:
		return "X"
	}
}

// Grammatical word lists for the smart-home rule language. These are the
// tagger's primary evidence; suffix heuristics cover the remainder.
var (
	determiners = set("the", "a", "an", "this", "that", "these", "those", "my",
		"your", "every", "each", "all", "any", "some", "no", "front", "back")

	prepositions = set("in", "on", "at", "to", "from", "of", "for", "with",
		"by", "into", "onto", "above", "below", "over", "under", "between",
		"after", "before", "during", "near", "inside", "outside", "within")

	pronouns = set("i", "you", "he", "she", "it", "we", "they", "me", "him",
		"her", "us", "them", "someone", "anyone", "nobody", "everyone")

	conjunctions = set("and", "or", "but", "nor", "so", "yet", "if", "when",
		"while", "whenever", "then", "unless", "until", "as", "because")

	auxiliaries = set("is", "are", "was", "were", "be", "been", "being", "am",
		"has", "have", "had", "do", "does", "did", "will", "would", "shall",
		"should", "can", "could", "may", "might", "must", "gets", "get", "got")

	particles = set("not", "n't", "off", "up", "down", "out")

	interjections = set("alexa", "ok", "okay", "hey", "google", "siri", "please")

	// Verbs of the rule language (base forms). Inflections are resolved by
	// the lemmatiser before lookup.
	verbLexicon = set(
		"turn", "switch", "activate", "deactivate", "enable", "disable",
		"open", "close", "shut", "lock", "unlock", "start", "stop", "begin",
		"run", "pause", "resume", "set", "adjust", "increase", "decrease",
		"raise", "lower", "dim", "brighten", "detect", "sense", "notify",
		"alert", "send", "record", "capture", "trigger", "arm", "disarm",
		"ring", "beep", "sound", "play", "mute", "unmute", "heat", "cool",
		"water", "spray", "vacuum", "clean", "brew", "wash", "dry", "charge",
		"reboot", "restart", "connect", "disconnect", "report", "log",
		"monitor", "check", "change", "flash", "blink", "announce", "speak",
		"remind", "schedule", "delay", "toggle", "press", "tap", "exceed",
		"drop", "rise", "fall", "reach", "leave", "arrive", "enter", "exit",
		"come", "go", "stay", "move", "occur", "happen", "email", "text",
		"call", "update", "sync", "stream", "snapshot", "add", "remove",
		"turn_on", "turn_off", "power",
	)

	// Nouns: devices, sensors, attributes, places, things.
	nounLexicon = set(
		"light", "lights", "lamp", "bulb", "switch", "plug", "outlet",
		"camera", "door", "doors", "window", "windows", "blind", "blinds",
		"curtain", "curtains", "shade", "thermostat", "heater", "furnace",
		"conditioner", "ac", "fan", "humidifier", "dehumidifier", "purifier",
		"vacuum", "valve", "sprinkler", "alarm", "siren", "speaker", "tv",
		"television", "radio", "coffee", "maker", "oven", "stove", "kettle",
		"refrigerator", "fridge", "freezer", "washer", "dryer", "dishwasher",
		"doorbell", "garage", "gate", "sensor", "detector", "smoke", "co",
		"monoxide", "carbon", "motion", "temperature", "humidity", "moisture",
		"illuminance", "luminance", "brightness", "presence", "occupancy",
		"contact", "water", "leak", "flood", "power", "energy", "battery",
		"level", "status", "state", "mode", "scene", "home", "house", "room",
		"kitchen", "bathroom", "bedroom", "living", "hallway", "basement",
		"attic", "office", "yard", "lawn", "degrees", "percent", "sunrise",
		"sunset", "night", "morning", "evening", "noon", "midnight", "time",
		"minutes", "seconds", "hours", "user", "phone", "notification",
		"message", "reminder", "spreadsheet", "subscriber", "wifi", "hub",
		"bridge", "network", "heat", "sound", "noise", "music", "volume",
		"channel", "lock", "key", "button", "app", "skill", "routine",
		"automation", "rule", "applet", "service", "assistant", "command",
		"smartthings", "ifttt", "everyone", "nobody", "song", "playlist",
		"weather", "rain", "snow", "wind", "forecast", "video", "clip",
		"recording", "snapshot", "photo", "picture", "email", "log", "event",
	)

	adjectiveLexicon = set(
		"on", "off", "open", "closed", "locked", "unlocked", "high", "low",
		"hot", "cold", "warm", "cool", "wet", "dry", "dark", "bright", "dim",
		"active", "inactive", "present", "absent", "away", "home", "empty",
		"full", "quiet", "loud", "armed", "disarmed", "running", "stopped",
		"detected", "cleared", "online", "offline", "connected",
		"disconnected", "new", "last", "next", "current", "automatic",
		"manual", "smart", "main", "double",
	)

	adverbLexicon = set("immediately", "automatically", "again", "now",
		"soon", "later", "always", "never", "once", "twice", "slowly",
		"quickly", "gradually", "back", "too", "also", "already", "still")
)

func set(words ...string) map[string]bool {
	m := make(map[string]bool, len(words))
	for _, w := range words {
		m[w] = true
	}
	return m
}

// Stopwords removed during key-phrase extraction.
var stopwords = set("the", "a", "an", "is", "are", "was", "were", "be",
	"been", "being", "to", "of", "and", "or", "in", "on", "at", "it", "its",
	"my", "your", "this", "that", "there", "here", "then", "than", "please")

// IsStopword reports whether the lower-cased token is a stopword.
func IsStopword(w string) bool { return stopwords[w] }
