package fedproto

import (
	"fmt"

	"fexiot/internal/autodiff"
	"fexiot/internal/fedproto/codec"
)

// The update-codec layer of the wire protocol.
//
// Negotiation: a client's MsgHello advertises the schemes it can encode
// (Message.Codecs); the server answers in the sync MsgModel with its
// assignment (Message.Codec) — its configured scheme when the client
// offers it, raw64 otherwise. Pre-codec peers interoperate for free: an
// old client advertises nothing and is assigned raw64, and an old server
// assigns nothing, which a new client reads as raw64.
//
// Delta semantics: lossy schemes (f32, q8, topk) only ever encode
// element-wise deltas against a model the server previously sent — deltas
// are small and centred near zero, which is what makes quantisation and
// sparsification cheap in accuracy. The server stamps every MsgModel it
// sends with a session-unique ModelSeq and remembers the last few
// snapshots per client; a delta update echoes the stamp as BaseSeq, so the
// server reconstructs against the exact base the client encoded against
// even when a reply and the next update cross on the wire. An update with
// no shared base (a fresh round-0 join, or a server that never stamped a
// model) falls back to dense raw64, and a delta naming an unknown base is
// rejected as malformed — never misapplied.
//
// Every MsgUpdate is self-describing (Codec, Delta, BaseSeq), so the
// server decodes whatever arrives regardless of what it assigned;
// assignment only steers well-behaved clients.

// negotiateCodec picks the update scheme for one session: the server's
// preferred scheme when the client advertises it, raw64 otherwise.
func negotiateCodec(preferred string, offered []string) string {
	if preferred == "" || preferred == codec.Raw64 {
		return codec.Raw64
	}
	for _, o := range offered {
		if o == preferred {
			return preferred
		}
	}
	return codec.Raw64
}

// encodeUpdate builds one round's update payloads under the negotiated
// codec: per-tensor deltas of p against base under a lossy scheme, or the
// legacy dense raw64 layers when the scheme is raw64 or no base is shared
// yet. It returns the payloads, the wire scheme name (empty for raw64,
// keeping raw64 frames byte-identical to pre-codec clients) and whether
// the values are deltas.
func encodeUpdate(p, base *autodiff.ParamSet, layers []int, norms map[int]float64,
	cdc codec.Codec) ([]LayerPayload, string, bool) {
	if cdc == nil || cdc.Name() == codec.Raw64 || base == nil {
		return EncodeLayers(p, layers, norms), "", false
	}
	out := make([]LayerPayload, 0, len(layers))
	for _, l := range layers {
		pl := LayerPayload{Layer: l, UpdateNorm: norms[l]}
		for _, name := range p.LayerNames(l) {
			m := p.Get(name)
			r, c := m.Dims()
			cur := m.Data()
			prev := base.Get(name).Data()
			d := make([]float64, len(cur))
			for i := range cur {
				d[i] = cur[i] - prev[i]
			}
			pl.Names = append(pl.Names, name)
			pl.Shapes = append(pl.Shapes, [2]int{r, c})
			pl.Enc = append(pl.Enc, cdc.Encode(d))
		}
		out = append(out, pl)
	}
	return out, cdc.Name(), true
}

// decodeUpdate validates an update's codec framing and reconstructs the
// dense absolute weights in place: after it returns nil, m.Layers carries
// Data exactly as a raw64 client would have sent it, so ValidateUpdate,
// CheckFiniteUpdate, the shape pin and every aggregator run unchanged.
// base is the model snapshot the update's BaseSeq names (nil when the
// update is not a delta). Remote input that fails any check is rejected
// with an error wrapping ErrMalformedUpdate.
func decodeUpdate(m *Message, base []LayerPayload) error {
	scheme := m.Codec
	if scheme == "" {
		scheme = codec.Raw64
	}
	if scheme == codec.Raw64 {
		if m.Delta {
			return fmt.Errorf("%w: raw64 update flagged as delta", ErrMalformedUpdate)
		}
		for l := range m.Layers {
			if len(m.Layers[l].Enc) != 0 {
				return fmt.Errorf("%w: raw64 update carries encoded tensors", ErrMalformedUpdate)
			}
		}
		return nil
	}
	cdc, err := codec.New(scheme)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrMalformedUpdate, err)
	}
	if m.Delta && base == nil {
		return fmt.Errorf("%w: delta update against unknown base %d", ErrMalformedUpdate, m.BaseSeq)
	}
	for l := range m.Layers {
		pl := &m.Layers[l]
		if len(pl.Data) != 0 {
			return fmt.Errorf("%w: %s update mixes dense and encoded tensors",
				ErrMalformedUpdate, scheme)
		}
		pl.Data = make([][]float64, len(pl.Enc))
		for i, t := range pl.Enc {
			vals, err := cdc.Decode(t)
			if err != nil {
				return fmt.Errorf("%w: layer %d tensor %d: %v", ErrMalformedUpdate, l, i, err)
			}
			if m.Delta {
				if l >= len(base) || i >= len(base[l].Data) || len(base[l].Data[i]) != len(vals) {
					return fmt.Errorf("%w: layer %d tensor %d delta does not match the synced base",
						ErrMalformedUpdate, l, i)
				}
				bd := base[l].Data[i]
				for j := range vals {
					vals[j] += bd[j]
				}
			}
			pl.Data[i] = vals
		}
		pl.Enc = nil
	}
	return nil
}

// denseBytes is the raw64-equivalent payload size of dense layers — the
// denominator of the compression-ratio telemetry.
func denseBytes(layers []LayerPayload) int64 {
	var n int64
	for _, pl := range layers {
		for _, d := range pl.Data {
			n += int64(len(d)) * 8
		}
	}
	return n
}
