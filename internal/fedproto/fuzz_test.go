package fedproto

import (
	"bytes"
	"encoding/gob"
	"math"
	"testing"

	"fexiot/internal/fed"
	"fexiot/internal/fedproto/codec"
)

// encodeFrame gob-encodes one message the way Conn.Send does.
func encodeFrame(t testing.TB, m *Message) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzDecodeUpdate feeds arbitrary bytes through the exact path a remote
// update takes on the server: gob decode, codec decodeUpdate (against both
// a missing and a plausible base), ValidateUpdate, CheckFiniteUpdate, then
// the flatten the aggregator would perform. Whatever the bytes, the
// pipeline must return errors — never panic.
func FuzzDecodeUpdate(f *testing.F) {
	p := scriptParams()
	valid := &Message{Kind: MsgUpdate, ClientID: 1, Round: 2,
		Layers: EncodeLayers(p, []int{0, 1}, zeroNorms(p))}
	f.Add(encodeFrame(f, valid))
	poisoned := &Message{Kind: MsgUpdate, ClientID: 1, Round: 2,
		Layers: EncodeLayers(p, []int{0, 1}, zeroNorms(p))}
	poisoned.Layers[0].Data[0][0] = math.NaN()
	f.Add(encodeFrame(f, poisoned))
	short := &Message{Kind: MsgUpdate, ClientID: 1,
		Layers: EncodeLayers(p, []int{0}, zeroNorms(p))}
	f.Add(encodeFrame(f, short))
	// Codec frames: a well-formed q8 delta, a topk delta naming a base the
	// server does not have, and a frame whose quantised byte count lies
	// about N.
	for _, name := range []string{codec.Q8, codec.TopK} {
		cdc, err := codec.New(name)
		if err != nil {
			f.Fatal(err)
		}
		lay, scheme, delta := encodeUpdate(p, scriptParams(), []int{0, 1}, zeroNorms(p), cdc)
		f.Add(encodeFrame(f, &Message{Kind: MsgUpdate, ClientID: 1, Round: 2,
			Layers: lay, Codec: scheme, Delta: delta, BaseSeq: 7}))
	}
	truncated := &Message{Kind: MsgUpdate, ClientID: 1, Codec: codec.Q8,
		Layers: []LayerPayload{{Layer: 0, Names: []string{"l0.w"},
			Shapes: [][2]int{{1, 2}}, Enc: []codec.Tensor{{N: 2, Q: []byte{1}}}}}}
	f.Add(encodeFrame(f, truncated))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x81, 0x03, 0x01})

	base := EncodeLayers(p, []int{0, 1}, zeroNorms(p))
	f.Fuzz(func(t *testing.T, data []byte) {
		var m Message
		if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&m); err != nil {
			return
		}
		// Run the codec reconstruction both ways a server could: the named
		// base is unknown (nil) or resolves to a plausible snapshot. Decode
		// mutates the message, so each path gets its own copy.
		for _, b := range [][]LayerPayload{nil, base} {
			m := m
			m.Layers = append([]LayerPayload(nil), m.Layers...)
			if err := decodeUpdate(&m, b); err != nil {
				continue
			}
			if err := ValidateUpdate(&m, 2); err != nil {
				continue
			}
			if err := CheckFiniteUpdate(&m); err != nil {
				continue
			}
			// A message that passed every gate must be safely flattenable —
			// this is what the round aggregation does with it.
			for _, pl := range m.Layers {
				_ = flatten(pl)
			}
		}
	})
}

// FuzzDecodeHello drives arbitrary bytes through the admission handshake's
// decode and field uses. Malformed hellos must be rejected or ignored, never
// crash the accept loop.
func FuzzDecodeHello(f *testing.F) {
	f.Add(encodeFrame(f, &Message{Kind: MsgHello, ClientID: 3, DataSize: 42}))
	f.Add(encodeFrame(f, &Message{Kind: MsgHello, ClientID: -1, DataSize: -7}))
	f.Add(encodeFrame(f, &Message{Kind: MsgUpdate, ClientID: 1}))
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x01, 0x02})

	f.Fuzz(func(t *testing.T, data []byte) {
		var m Message
		if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&m); err != nil {
			return
		}
		if m.Kind != MsgHello {
			return // admit closes the socket on anything but a hello
		}
		// The fields admit consumes: registration key and FedAvg weight. A
		// lying DataSize feeds the weighting rule, which must stay total.
		_ = m.ClientID
		_ = fed.QuorumWeights([]int{10, m.DataSize}, []int{0, 1})
	})
}
