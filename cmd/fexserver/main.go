// Command fexserver runs the FexIoT federated aggregation server over TCP:
// it waits for the expected number of fexclient processes, coordinates the
// training rounds with layer-wise clustered aggregation (Algorithm 1), and
// reports real transferred bytes — the measured counterpart of Fig. 7.
//
// Usage:
//
//	fexserver -addr :7070 -clients 4 -rounds 10
package main

import (
	"flag"
	"fmt"
	"os"

	"fexiot/internal/fedproto"
)

func main() {
	addr := flag.String("addr", ":7070", "listen address")
	clients := flag.Int("clients", 2, "expected client count")
	rounds := flag.Int("rounds", 10, "federated rounds")
	layers := flag.Int("layers", 4, "model layer count (must match clients)")
	eps1 := flag.Float64("eps1", 0.6, "clustering gate ε1 (relative)")
	eps2 := flag.Float64("eps2", 0.95, "clustering gate ε2 (relative)")
	timeout := flag.Duration("timeout", fedproto.DefaultRoundTimeout,
		"per-client read/write deadline per round (negative disables)")
	flag.Parse()

	srv := fedproto.NewServer(fedproto.ServerConfig{
		Addr:         *addr,
		Clients:      *clients,
		Rounds:       *rounds,
		Eps1:         *eps1,
		Eps2:         *eps2,
		NumLayers:    *layers,
		RoundTimeout: *timeout,
	})
	fmt.Printf("fexserver listening on %s for %d clients, %d rounds\n",
		*addr, *clients, *rounds)
	total, err := srv.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "server error:", err)
		os.Exit(1)
	}
	fmt.Printf("training complete; total transferred bytes: %d (%.2f MB)\n",
		total, float64(total)/1e6)
}
