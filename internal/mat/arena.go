package mat

import (
	"os"
	"sync"
	"sync/atomic"
)

// Arena is a size-classed free-list allocator for []float64 backing arrays.
// It exists to take the Go allocator and garbage collector off the training
// and serving hot paths: every op of a define-by-run autodiff pass needs a
// fresh value and gradient buffer, and without reuse each forward/backward
// pass churns megabytes of short-lived garbage (the problem the PyTorch/DGL
// caching-allocator solves in the stack this repository replaces).
//
// Buffers are bucketed by exact length — the tape re-runs the same model
// shapes step after step, so exact classes hit almost always and never
// overhang. Lease returns memory zeroed to preserve NewDense semantics
// bit-identically; Release recycles a buffer into its class up to a bounded
// per-class cap (beyond it the buffer is dropped for the GC to take).
//
// An Arena is safe for concurrent use, but the intended pattern is one
// arena per Tape/workspace, touched by one goroutine at a time — the mutex
// is then never contended.
//
// Ownership discipline (see DESIGN.md §4.13): a buffer is either live
// (exactly one holder may read and write it) or free (owned by the arena).
// Releasing a buffer twice, or reading it after Release, is a bug; build
// with -tags=debugarena to fill freed buffers with NaN so such
// use-after-recycle reads poison results loudly instead of corrupting them
// silently.
type Arena struct {
	mu      sync.Mutex
	classes map[int]*arenaClass

	// maxPerClass bounds each free list; 0 selects DefaultArenaCap.
	maxPerClass int

	bytesPooled int64 // bytes currently held in free lists
	bytesLive   int64 // bytes currently leased out
	leases      uint64
	hits        uint64
	misses      uint64
	releases    uint64
	trims       uint64
}

// arenaClass is one exact-size bucket.
type arenaClass struct {
	bufs [][]float64
	// used marks the class as touched (leased from) since the last Trim;
	// Trim drops the free buffers of untouched classes, so shapes that
	// stopped recurring (an old graph size, a resized model) are given back
	// to the GC after one idle epoch.
	used bool
}

// DefaultArenaCap is the default per-class free-list bound. Training keeps
// at most a few buffers of each shape in flight at once (value + gradient +
// a backward temporary), so a small cap retains every steady-state buffer
// while bounding worst-case retention for one-off shapes.
const DefaultArenaCap = 64

// arenaEnabled is the process-wide arena switch: when false every Lease
// falls back to a plain make and Release drops the buffer, restoring the
// exact allocation behaviour of the pre-arena runtime. Controlled by the
// FEXIOT_ARENA environment variable ("off", "0" or "false" disable) and
// SetArenaEnabled.
var arenaEnabled atomic.Bool

func init() {
	on := true
	switch os.Getenv("FEXIOT_ARENA") {
	case "off", "0", "false":
		on = false
	}
	arenaEnabled.Store(on)
}

// SetArenaEnabled toggles buffer pooling process-wide. Disabling it does
// not invalidate live leases; it only makes future leases allocate fresh
// memory and future releases drop their buffers.
func SetArenaEnabled(on bool) { arenaEnabled.Store(on) }

// ArenaEnabled reports whether buffer pooling is active.
func ArenaEnabled() bool { return arenaEnabled.Load() }

// NewArena creates an empty arena. maxPerClass bounds each size class's
// free list (0 = DefaultArenaCap).
func NewArena(maxPerClass int) *Arena {
	if maxPerClass <= 0 {
		maxPerClass = DefaultArenaCap
	}
	return &Arena{classes: map[int]*arenaClass{}, maxPerClass: maxPerClass}
}

// Lease returns a zeroed []float64 of length n, reusing a recycled buffer
// of the exact same length when one is free. The caller owns the buffer
// until it hands it back via Release (or keeps it forever — leaking to the
// GC is always safe).
func (a *Arena) Lease(n int) []float64 {
	if n <= 0 {
		return nil
	}
	if !arenaEnabled.Load() {
		a.count(&a.leases, &a.misses, n)
		return make([]float64, n)
	}
	a.mu.Lock()
	a.leases++
	cl := a.classes[n]
	if cl != nil {
		cl.used = true
	}
	if cl == nil || len(cl.bufs) == 0 {
		a.misses++
		a.bytesLive += int64(n) * 8
		a.mu.Unlock()
		if am := ametrics.Load(); am != nil {
			am.leases.Inc()
			am.misses.Inc()
			am.bytesLive.Add(float64(n) * 8)
		}
		return make([]float64, n)
	}
	a.hits++
	buf := cl.bufs[len(cl.bufs)-1]
	cl.bufs = cl.bufs[:len(cl.bufs)-1]
	a.bytesPooled -= int64(n) * 8
	a.bytesLive += int64(n) * 8
	a.mu.Unlock()
	if am := ametrics.Load(); am != nil {
		am.leases.Inc()
		am.hits.Inc()
		am.bytesLive.Add(float64(n) * 8)
		am.bytesPooled.Add(float64(n) * -8)
	}
	// Zero on lease, not on release: NewDense semantics are preserved
	// bit-identically, and the debugarena NaN poison stays visible for the
	// whole time a freed buffer sits in the pool.
	clear(buf)
	return buf
}

// count records a disabled-path lease without touching the free lists.
func (a *Arena) count(leases, misses *uint64, n int) {
	a.mu.Lock()
	*leases++
	*misses++
	a.mu.Unlock()
	if am := ametrics.Load(); am != nil {
		am.leases.Inc()
		am.misses.Inc()
	}
}

// Release recycles a leased buffer into its exact-size class. Buffers
// beyond the per-class cap — and every buffer while the arena is disabled —
// are dropped for the GC. The caller must not touch buf afterwards; with
// -tags=debugarena the buffer is immediately filled with NaN so stale reads
// are caught by the first computation that consumes them.
func (a *Arena) Release(buf []float64) {
	n := len(buf)
	if n == 0 {
		return
	}
	poison(buf)
	if am := ametrics.Load(); am != nil {
		am.releases.Inc()
		am.bytesLive.Add(float64(n) * -8)
	}
	if !arenaEnabled.Load() {
		a.mu.Lock()
		a.releases++
		a.bytesLive -= int64(n) * 8
		a.mu.Unlock()
		return
	}
	a.mu.Lock()
	a.releases++
	a.bytesLive -= int64(n) * 8
	cl := a.classes[n]
	if cl == nil {
		cl = &arenaClass{used: true}
		a.classes[n] = cl
	}
	if len(cl.bufs) >= a.maxPerClass {
		a.mu.Unlock()
		return
	}
	cl.bufs = append(cl.bufs, buf[:n:n])
	a.bytesPooled += int64(n) * 8
	a.mu.Unlock()
	if am := ametrics.Load(); am != nil {
		am.bytesPooled.Add(float64(n) * 8)
	}
}

// LeaseDense wraps a leased, zeroed buffer in a fresh r×c Dense header.
// Prefer Dense.Remake onto a caller-owned header on hot paths.
func (a *Arena) LeaseDense(r, c int) *Dense {
	return NewDenseData(r, c, a.Lease(r*c))
}

// ReleaseDense recycles a Dense previously backed by this arena's memory.
func (a *Arena) ReleaseDense(m *Dense) {
	if m != nil {
		a.Release(m.data)
	}
}

// Trim is the epoch hook: it drops the free buffers of every class that has
// not been leased from since the previous Trim, then starts a new epoch.
// Callers invoke it at coarse boundaries (the tape does so automatically
// every arenaTrimEvery resets), so shapes that stopped recurring are
// returned to the GC within two epochs while active shapes are never
// evicted.
func (a *Arena) Trim() {
	a.mu.Lock()
	a.trims++
	for n, cl := range a.classes {
		if cl.used {
			cl.used = false
			continue
		}
		a.bytesPooled -= int64(n*len(cl.bufs)) * 8
		if am := ametrics.Load(); am != nil {
			am.bytesPooled.Add(float64(n*len(cl.bufs)) * -8)
		}
		delete(a.classes, n)
	}
	a.mu.Unlock()
	if am := ametrics.Load(); am != nil {
		am.trims.Inc()
	}
}

// ArenaStats is a point-in-time snapshot of an arena's counters.
type ArenaStats struct {
	Leases      uint64
	Hits        uint64
	Misses      uint64
	Releases    uint64
	Trims       uint64
	BytesLive   int64 // bytes currently leased out
	BytesPooled int64 // bytes currently retained in free lists
	Classes     int   // live size classes
}

// Stats reports the arena's counters.
func (a *Arena) Stats() ArenaStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return ArenaStats{
		Leases:      a.leases,
		Hits:        a.hits,
		Misses:      a.misses,
		Releases:    a.releases,
		Trims:       a.trims,
		BytesLive:   a.bytesLive,
		BytesPooled: a.bytesPooled,
		Classes:     len(a.classes),
	}
}

// Remake repoints m at a new shape and backing slice (len(data) must equal
// r*c). It lets a long-lived Dense header be retargeted at arena-leased
// memory without allocating a new header — the tape's node recycling relies
// on it. The previous backing slice is untouched (the caller releases it
// separately if it was leased).
func (m *Dense) Remake(r, c int, data []float64) {
	if len(data) != r*c {
		panic("mat: Remake data length does not match dimensions")
	}
	m.rows, m.cols, m.data = r, c, data
}
