package serve

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fexiot/internal/chaos"
	"fexiot/internal/embed"
	"fexiot/internal/eventlog"
	"fexiot/internal/fusion"
	"fexiot/internal/graph"
	"fexiot/internal/obs"
	"fexiot/internal/rules"
)

// offlineBuilder mirrors httpFixture's graph builder with dims matching
// the test fixtures.
func offlineBuilder() GraphBuilder {
	b := fusion.NewBuilder(51, embed.NewEncoder(24, 32))
	return func(rs []*rules.Rule, _ eventlog.Log) (*graph.Graph, error) {
		size := len(rs)
		if size > 50 {
			size = 50
		}
		return b.Offline(rs, size), nil
	}
}

// TestOverloadShedsFast is the load-shedding acceptance test: with one
// deliberately blocked worker and a depth-1 queue, surplus requests are
// rejected immediately with ErrOverloaded (not parked until a deadline),
// the shed counter advances, and the accepted requests still return
// bit-identical verdicts once the worker unblocks.
func TestOverloadShedsFast(t *testing.T) {
	det, drf, gs := fixture(61)
	snap := NewSnapshot(1, det, drf, searchCfg)
	g := gs[0]
	want := snap.Detect(g)

	reg := obs.NewRegistry()
	block := make(chan struct{})
	var blocked sync.Once
	e := NewEngine(Options{Workers: 1, QueueDepth: 1, Metrics: reg,
		FaultHook: func(string) {
			// Stall the only worker on its first pass so the queue backs up.
			blocked.Do(func() { <-block })
		}})
	defer e.Close()
	e.Publish(snap)

	// Request 1 occupies the worker (parked in the hook), request 2 fills
	// the depth-1 queue. Both must succeed eventually.
	accepted := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			v, _, err := e.Detect(context.Background(), g)
			if err == nil && v != want {
				err = errors.New("verdict tore under overload")
			}
			accepted <- err
		}()
		// Deterministic arrival order: worker first, queue slot second.
		time.Sleep(50 * time.Millisecond)
	}

	// Every further request must shed fast — well under any deadline.
	sheds := 0
	for i := 0; i < 5; i++ {
		start := time.Now()
		_, _, err := e.Detect(context.Background(), g)
		if !errors.Is(err, ErrOverloaded) {
			t.Fatalf("surplus request %d: err = %v, want ErrOverloaded", i, err)
		}
		if waited := time.Since(start); waited > time.Second {
			t.Fatalf("shed took %v — that is parking, not fast-fail", waited)
		}
		sheds++
	}
	if got := reg.Counter("fexiot_serve_shed_total", "").Value(); got != int64(sheds) {
		t.Fatalf("shed counter = %v, want %d", got, sheds)
	}

	close(block) // unblock the worker; the two accepted requests drain
	for i := 0; i < 2; i++ {
		select {
		case err := <-accepted:
			if err != nil {
				t.Fatalf("accepted request failed: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("accepted request never completed")
		}
	}
}

// TestWorkerPanicRecoveredAndRestarted: a scheduled panic inside inference
// answers exactly that request with ErrPanicked, advances the panic
// counter, restarts the worker under supervision, and the very next
// request succeeds on the restarted pool.
func TestWorkerPanicRecoveredAndRestarted(t *testing.T) {
	det, drf, gs := fixture(67)
	snap := NewSnapshot(1, det, drf, searchCfg)
	g := gs[0]

	reg := obs.NewRegistry()
	hook := chaos.PanicOnCall(2, "inference meltdown")
	e := NewEngine(Options{Workers: 1, QueueDepth: 4, Metrics: reg,
		FaultHook: func(string) { hook() }})
	defer e.Close()
	e.Publish(snap)

	if _, _, err := e.Detect(context.Background(), g); err != nil {
		t.Fatalf("pre-panic request: %v", err)
	}
	_, _, err := e.Detect(context.Background(), g)
	if !errors.Is(err, ErrPanicked) {
		t.Fatalf("panicked request err = %v, want ErrPanicked", err)
	}
	if got := reg.Counter("fexiot_serve_panics_total", "").Value(); got != 1 {
		t.Fatalf("panic counter = %v, want 1", got)
	}

	// The supervisor restarts the worker with a short backoff; the next
	// request must be served by the reborn goroutine.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	want := snap.Detect(g)
	v, _, err := e.Detect(ctx, g)
	if err != nil || v != want {
		t.Fatalf("post-restart request = %+v, %v; want clean verdict", v, err)
	}
	if got := e.WorkerRestarts(); got < 1 {
		t.Fatalf("WorkerRestarts = %d, want ≥ 1", got)
	}
	restarts := reg.CounterVec("fexiot_supervisor_restarts_total", "", "task").
		With("serve-worker").Value()
	if restarts < 1 {
		t.Fatalf("restart metric = %v, want ≥ 1", restarts)
	}
	if err := e.LiveCheck()(); err != nil {
		t.Fatalf("one recovered panic tripped liveness: %v", err)
	}
}

// TestCloseSubmitRace pins the Close-vs-submit race under -race: requests
// racing a concurrent Close either complete or fail with a clean error
// (ErrClosed/ErrOverloaded), never a send-on-closed-channel panic.
func TestCloseSubmitRace(t *testing.T) {
	det, drf, gs := fixture(71)
	snap := NewSnapshot(1, det, drf, searchCfg)
	g := gs[0]
	for round := 0; round < 20; round++ {
		e := NewEngine(Options{Workers: 2, QueueDepth: 2})
		e.Publish(snap)
		var wg sync.WaitGroup
		start := make(chan struct{})
		var badErr atomic.Value
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				_, _, err := e.Detect(context.Background(), g)
				if err != nil && !errors.Is(err, ErrClosed) && !errors.Is(err, ErrOverloaded) {
					badErr.Store(err)
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			e.Close()
		}()
		close(start)
		wg.Wait()
		e.Close()
		if err, ok := badErr.Load().(error); ok {
			t.Fatalf("round %d: unexpected submit error %v", round, err)
		}
	}
}

// TestReadyCheck pins the readiness gate: not-ready before the first
// publish, ready after, stale once the snapshot outlives maxAge, closed
// after Close.
func TestReadyCheck(t *testing.T) {
	det, drf, _ := fixture(73)
	e := NewEngine(Options{Workers: 1})
	ready := e.ReadyCheck(0)
	if err := ready(); !errors.Is(err, ErrNotReady) {
		t.Fatalf("pre-publish ready = %v, want ErrNotReady", err)
	}
	e.Publish(NewSnapshot(1, det, drf, searchCfg))
	if err := ready(); err != nil {
		t.Fatalf("post-publish ready = %v, want nil", err)
	}
	stale := e.ReadyCheck(time.Nanosecond)
	time.Sleep(10 * time.Millisecond)
	if err := stale(); err == nil || !strings.Contains(err.Error(), "stale") {
		t.Fatalf("aged snapshot ready = %v, want staleness error", err)
	}
	e.Close()
	if err := ready(); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed engine ready = %v, want ErrClosed", err)
	}
}

// TestHTTPOverloadReturns429 drives the saturated engine through the HTTP
// layer: shed requests map to 429 with a Retry-After hint while accepted
// requests stay 2xx.
func TestHTTPOverloadReturns429(t *testing.T) {
	det, drf, _ := fixture(79)
	block := make(chan struct{})
	var blocked sync.Once
	e := NewEngine(Options{Workers: 1, QueueDepth: 1,
		FaultHook: func(string) { blocked.Do(func() { <-block }) }})
	t.Cleanup(e.Close)
	e.Publish(NewSnapshot(1, det, drf, searchCfg))
	mux := http.NewServeMux()
	e.Mount(mux, offlineBuilder(), 30*time.Second)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	home := rules.NewGenerator(23, rules.Archetypes()[0], "h-").RuleSet(10)

	results := make(chan *http.Response, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, _ := postJSON(t, ts.URL+"/v1/detect", DetectRequest{Rules: home})
			results <- resp
		}()
		time.Sleep(50 * time.Millisecond)
	}

	resp, _ := postJSON(t, ts.URL+"/v1/detect", DetectRequest{Rules: home})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("surplus request status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 reply missing Retry-After")
	}

	close(block)
	for i := 0; i < 2; i++ {
		select {
		case resp := <-results:
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("accepted request status = %d, want 200", resp.StatusCode)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("accepted request never returned")
		}
	}
}

// TestHTTPBodyLimit413: a body over MaxBodyBytes is rejected with 413
// before any parsing work.
func TestHTTPBodyLimit413(t *testing.T) {
	det, drf, _ := fixture(83)
	e := NewEngine(Options{Workers: 1, MaxBodyBytes: 2048})
	t.Cleanup(e.Close)
	e.Publish(NewSnapshot(1, det, drf, searchCfg))
	mux := http.NewServeMux()
	e.Mount(mux, offlineBuilder(), 5*time.Second)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	big := `{"rules": [{"id": "` + strings.Repeat("x", 4096) + `"}]}`
	resp, err := http.Post(ts.URL+"/v1/detect", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body status = %d, want 413", resp.StatusCode)
	}

	small := rules.NewGenerator(29, rules.Archetypes()[0], "h-").RuleSet(3)
	resp2, _ := postJSON(t, ts.URL+"/v1/detect", DetectRequest{Rules: small})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("in-limit body status = %d, want 200", resp2.StatusCode)
	}
}

// TestHTTPHandlerPanicIs500: a panicking graph builder costs that request
// a 500 (with the panic counter advancing), never the process.
func TestHTTPHandlerPanicIs500(t *testing.T) {
	det, drf, _ := fixture(89)
	reg := obs.NewRegistry()
	e := NewEngine(Options{Workers: 1, Metrics: reg})
	t.Cleanup(e.Close)
	e.Publish(NewSnapshot(1, det, drf, searchCfg))
	mux := http.NewServeMux()
	e.Mount(mux, func(rs []*rules.Rule, _ eventlog.Log) (*graph.Graph, error) {
		panic("builder meltdown")
	}, 5*time.Second)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	home := rules.NewGenerator(31, rules.Archetypes()[0], "h-").RuleSet(3)
	resp, body := postJSON(t, ts.URL+"/v1/detect", DetectRequest{Rules: home})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking handler status = %d (%s), want 500", resp.StatusCode, body)
	}
	if got := reg.Counter("fexiot_serve_panics_total", "").Value(); got != 1 {
		t.Fatalf("panic counter = %v, want 1", got)
	}
	// The server survives: an honest follow-up request must 500-loop, not
	// connection-reset, and the engine itself still answers.
	if _, _, err := e.Detect(context.Background(), gsFromFixture(t)); err != nil {
		t.Fatalf("engine dead after handler panic: %v", err)
	}
}

// gsFromFixture grabs one fixture graph for follow-up probes.
func gsFromFixture(t *testing.T) *graph.Graph {
	t.Helper()
	_, _, gs := fixture(97)
	return gs[0]
}
