#!/bin/sh
# bench-baseline.sh — run the allocation/throughput benchmark suite and emit
# a machine-readable BENCH_<date>.json snapshot next to the repo root.
#
# Usage:
#   sh scripts/bench-baseline.sh            # full suite, BENCH_YYYY-MM-DD.json
#   BENCH_SMOKE=1 sh scripts/bench-baseline.sh   # tiny benchtime, temp output
#                                                # (the `make check` wiring)
#   BENCH_OUT=path.json sh scripts/bench-baseline.sh
#
# Each JSON record carries: name, iters, ns_op, b_op, allocs_op and any
# extra b.ReportMetric columns (GFLOP/s, req/s, wire-B/op, ...) under
# "metrics". The file is an array, one object per benchmark line, suitable
# for jq/CI diffing against a committed baseline.
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${BENCH_BENCHTIME:-1x}"
PATTERN="${BENCH_PATTERN:-BenchmarkTrainStepAllocs|BenchmarkDetectAllocs|BenchmarkTrainContrastive|BenchmarkDetect$|BenchmarkMatMulSerial|BenchmarkCodecs}"
OUT="${BENCH_OUT:-BENCH_$(date +%Y-%m-%d).json}"

if [ "${BENCH_SMOKE:-0}" = "1" ]; then
    # Smoke mode: prove the harness runs and parses end-to-end without
    # paying full benchmark time; write to a throwaway file.
    PATTERN="BenchmarkTrainStepAllocs|BenchmarkDetectAllocs"
    OUT="$(mktemp /tmp/fexiot-bench.XXXXXX.json)"
fi

RAW="$(mktemp /tmp/fexiot-bench-raw.XXXXXX)"
trap 'rm -f "$RAW"' EXIT

echo "bench-baseline: pattern=$PATTERN benchtime=$BENCHTIME -> $OUT" >&2

# -benchmem makes every line carry B/op and allocs/op; benches that also
# call b.ReportMetric append their extra columns after those.
go test -run XXX -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" \
    ./... 2>/dev/null | grep '^Benchmark' | tee "$RAW" >&2

[ -s "$RAW" ] || { echo "bench-baseline: no benchmark output" >&2; exit 1; }

awk '
BEGIN { print "["; first = 1 }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    iters = $2
    ns = ""; bop = ""; aop = ""; extra = ""
    for (i = 3; i < NF; i++) {
        unit = $(i + 1)
        if (unit == "ns/op")          { ns  = $i; i++ }
        else if (unit == "B/op")      { bop = $i; i++ }
        else if (unit == "allocs/op") { aop = $i; i++ }
        else if (unit !~ /^[0-9.+-]/) {
            gsub(/"/, "", unit)
            extra = extra (extra == "" ? "" : ", ") "\"" unit "\": " $i
            i++
        }
    }
    if (!first) printf ",\n"
    first = 0
    printf "  {\"name\": \"%s\", \"iters\": %s", name, iters
    if (ns  != "") printf ", \"ns_op\": %s", ns
    if (bop != "") printf ", \"b_op\": %s", bop
    if (aop != "") printf ", \"allocs_op\": %s", aop
    if (extra != "") printf ", \"metrics\": {%s}", extra
    printf "}"
}
END { print "\n]" }
' "$RAW" >"$OUT"

# JSON sanity: the file must parse (python3 is in the base image; skip the
# check quietly if it ever is not).
if command -v python3 >/dev/null 2>&1; then
    python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$OUT"
fi

n=$(grep -c '"name"' "$OUT" || true)
echo "bench-baseline: wrote $n records to $OUT" >&2
[ "$n" -gt 0 ]
