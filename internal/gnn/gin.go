package gnn

import (
	"fmt"

	"fexiot/internal/autodiff"
	"fexiot/internal/graph"
	"fexiot/internal/mat"
	"fexiot/internal/rng"
)

// GIN is the graph isomorphism network (Xu et al. 2019, "the original model
// architecture"): each layer applies a two-layer MLP to the ε-weighted
// neighbourhood sum, and the readout is the sum of per-layer sum-pooled
// representations projected to the output width — the injective aggregation
// that gives GIN its discriminative power over GCN.
type GIN struct {
	InputDim  int
	HiddenDim int
	OutDim    int
	NumLayers int
	Eps       float64

	params *autodiff.ParamSet
}

// NewGIN builds a GIN with Glorot-initialised weights.
func NewGIN(inputDim, hiddenDim, outDim int, seed int64) *GIN {
	m := &GIN{InputDim: inputDim, HiddenDim: hiddenDim, OutDim: outDim,
		NumLayers: 3, Eps: 0.1}
	r := rng.New(seed)
	p := autodiff.NewParamSet()
	in := inputDim
	for l := 0; l < m.NumLayers; l++ {
		p.Register(fmt.Sprintf("gin%d.w1", l), l, r.Glorot(in, hiddenDim))
		p.Register(fmt.Sprintf("gin%d.b1", l), l, mat.NewDense(1, hiddenDim))
		p.Register(fmt.Sprintf("gin%d.w2", l), l, r.Glorot(hiddenDim, hiddenDim))
		p.Register(fmt.Sprintf("gin%d.b2", l), l, mat.NewDense(1, hiddenDim))
		// Per-layer readout projection (jumping knowledge style).
		p.Register(fmt.Sprintf("gin%d.out", l), m.NumLayers, r.Glorot(2*hiddenDim, outDim))
		in = hiddenDim
	}
	m.params = p
	return m
}

// Params returns the weight set.
func (m *GIN) Params() *autodiff.ParamSet { return m.params }

// EmbedDim returns the embedding width.
func (m *GIN) EmbedDim() int { return m.OutDim }

// Fresh returns a new GIN with the same shape.
func (m *GIN) Fresh(seed int64) Model {
	return NewGIN(m.InputDim, m.HiddenDim, m.OutDim, seed)
}

// Forward builds the embedding computation for one graph.
func (m *GIN) Forward(t *autodiff.Tape, b *autodiff.Binder, g *graph.Graph) *autodiff.Node {
	agg := g.CachedSumAdjacency(m.Eps)
	h := t.Constant(g.CachedPadFeatures(m.InputDim))
	var readout *autodiff.Node
	for l := 0; l < m.NumLayers; l++ {
		h = t.SpMM(agg, h)
		h = t.MatMul(h, b.Node(fmt.Sprintf("gin%d.w1", l)))
		h = t.AddRowBroadcast(h, b.Node(fmt.Sprintf("gin%d.b1", l)))
		h = t.ReLU(h)
		h = t.MatMul(h, b.Node(fmt.Sprintf("gin%d.w2", l)))
		h = t.AddRowBroadcast(h, b.Node(fmt.Sprintf("gin%d.b2", l)))
		h = t.ReLU(h)
		// Pool this layer: size-normalised sum (so graph size does not
		// dominate contrastive distances) concatenated with a max pool
		// that preserves existence of localised vulnerability patterns.
		mean := t.Scale(t.SumRows(h), 1/float64(maxInt(g.N(), 1)))
		pooled := t.ConcatCols(mean, t.MaxRows(h))
		proj := t.MatMul(pooled, b.Node(fmt.Sprintf("gin%d.out", l)))
		if readout == nil {
			readout = proj
		} else {
			readout = t.Add(readout, proj)
		}
	}
	return readout
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
