package jenks

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestBreaksTwoClusters(t *testing.T) {
	data := []float64{1, 2, 1.5, 2.2, 1.1, 30, 31, 29, 30.5}
	b := Breaks(data, 2)
	if len(b) != 1 {
		t.Fatalf("breaks = %v", b)
	}
	if b[0] < 2.2 || b[0] >= 29 {
		t.Fatalf("break %v should separate the clusters", b[0])
	}
}

func TestBreaksThreeClusters(t *testing.T) {
	data := []float64{1, 1.2, 0.9, 10, 10.5, 9.8, 50, 51, 49}
	b := Breaks(data, 3)
	if len(b) != 2 {
		t.Fatalf("breaks = %v", b)
	}
	if !(b[0] >= 0.9 && b[0] < 9.8 && b[1] >= 10 && b[1] < 49) {
		t.Fatalf("breaks %v misplaced", b)
	}
}

func TestBreaksMatchExhaustiveK2(t *testing.T) {
	// For k=2 the optimal split minimises total within-class variance; brute
	// force over all split points must agree with the DP.
	data := []float64{3, 7, 1, 9, 4, 15, 16, 2, 14}
	sorted := append([]float64(nil), data...)
	sort.Float64s(sorted)
	sse := func(xs []float64) float64 {
		if len(xs) == 0 {
			return 0
		}
		var m float64
		for _, x := range xs {
			m += x
		}
		m /= float64(len(xs))
		var s float64
		for _, x := range xs {
			s += (x - m) * (x - m)
		}
		return s
	}
	bestCost := 1e300
	var bestBreak float64
	for i := 1; i < len(sorted); i++ {
		c := sse(sorted[:i]) + sse(sorted[i:])
		if c < bestCost {
			bestCost = c
			bestBreak = sorted[i-1]
		}
	}
	got := Breaks(data, 2)
	if len(got) != 1 || got[0] != bestBreak {
		t.Fatalf("DP break %v, exhaustive %v", got, bestBreak)
	}
}

func TestBreaksMonotoneProperty(t *testing.T) {
	f := func(raw []float64, kRaw uint8) bool {
		if len(raw) < 3 {
			return true
		}
		data := make([]float64, 0, len(raw))
		for _, v := range raw {
			if v == v && v < 1e100 && v > -1e100 { // drop NaN/huge
				data = append(data, v)
			}
		}
		if len(data) < 3 {
			return true
		}
		k := 2 + int(kRaw)%3
		b := Breaks(data, k)
		for i := 1; i < len(b); i++ {
			if b[i] <= b[i-1] {
				return false
			}
		}
		// Breaks lie within the data range.
		sorted := append([]float64(nil), data...)
		sort.Float64s(sorted)
		for _, x := range b {
			if x < sorted[0] || x > sorted[len(sorted)-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBreaksDegenerate(t *testing.T) {
	if b := Breaks(nil, 2); b != nil {
		t.Fatalf("empty data breaks = %v", b)
	}
	if b := Breaks([]float64{5}, 3); len(b) != 0 {
		t.Fatalf("single value breaks = %v", b)
	}
	// All identical values: dedupe collapses breaks.
	b := Breaks([]float64{2, 2, 2, 2}, 3)
	if len(b) > 1 {
		t.Fatalf("identical data breaks = %v", b)
	}
}

func TestClassify(t *testing.T) {
	breaks := []float64{10, 20}
	cases := map[float64]int{5: 0, 10: 0, 15: 1, 20: 1, 25: 2}
	for v, want := range cases {
		if got := Classify(v, breaks); got != want {
			t.Errorf("Classify(%v) = %d want %d", v, got, want)
		}
	}
}

func TestToLogical(t *testing.T) {
	history := []float64{20, 22, 25, 30, 31, 33, 60, 62, 65, 70}
	// 20s-30s cluster vs 60-70 cluster with k=2.
	if got := ToLogical(25, history, 2); got != "low" {
		t.Errorf("ToLogical(25) = %q", got)
	}
	if got := ToLogical(65, history, 2); got != "high" {
		t.Errorf("ToLogical(65) = %q", got)
	}
}

func TestLevelNames(t *testing.T) {
	if got := LevelNames(2); got[0] != "low" || got[1] != "high" {
		t.Fatalf("LevelNames(2) = %v", got)
	}
	if got := LevelNames(3); got[1] != "medium" {
		t.Fatalf("LevelNames(3) = %v", got)
	}
	if got := LevelNames(5); len(got) != 5 {
		t.Fatalf("LevelNames(5) = %v", got)
	}
}

func TestBreaksPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k<2")
		}
	}()
	Breaks([]float64{1, 2}, 1)
}
