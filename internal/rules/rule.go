package rules

import (
	"fmt"
	"strings"
)

// Condition is the trigger side of a rule: the device/attribute/state that
// must hold for the rule to fire. Time and voice triggers use the pseudo
// devices "clock" and the assistant name. Room scopes the condition to a
// device instance ("" means home-global, e.g. presence, time, voice).
type Condition struct {
	Device  string
	Room    string
	Channel Channel
	State   string
}

// Effect is one action of a rule: the commanded device instance, the state
// it ends up in, and the environmental side effects of executing the
// command. Environmental deltas act within the device's room (heat from the
// kitchen heater does not trip the bedroom thermostat).
type Effect struct {
	Device    string
	Room      string
	Verb      string
	Channel   Channel
	State     string
	Env       []EnvDelta
	Sensitive bool
}

// roomsMatch reports whether two room scopes refer to overlapping space:
// a home-global scope ("") overlaps every room.
func roomsMatch(a, b string) bool { return a == "" || b == "" || a == b }

// Rule is a trigger-action automation rule deployed in a home.
type Rule struct {
	ID          string
	Platform    Platform
	Description string
	Trigger     Condition
	Actions     []Effect
}

// String renders a compact identifier.
func (r *Rule) String() string {
	return fmt.Sprintf("%s[%s]", r.ID, r.Platform)
}

// MatchKind classifies how an action can trigger a condition.
type MatchKind int

// The causal edge kinds of the interaction model.
const (
	NoMatch     MatchKind = iota
	DirectMatch           // action sets exactly the device state the condition tests
	EnvMatch              // action's environmental side effect satisfies the condition
)

// CanTrigger reports whether effect a can cause condition c to become true,
// and through which mechanism. Direct matches require the same device kind,
// channel and state. Environmental matches require an EnvDelta on the
// condition's channel whose sign agrees with the condition state's pole.
func CanTrigger(a Effect, c Condition) MatchKind {
	if c.Channel == ChanNone || !roomsMatch(a.Room, c.Room) {
		return NoMatch
	}
	if a.Device == c.Device && a.Channel == c.Channel && a.State == c.State {
		return DirectMatch
	}
	want := StateSign(c.State)
	if want == 0 {
		return NoMatch
	}
	for _, d := range a.Env {
		if d.Channel == c.Channel && d.Sign == want {
			return EnvMatch
		}
	}
	return NoMatch
}

// Blocks reports whether effect a makes condition c false (the mechanism
// behind the paper's "condition block" vulnerability): the action writes
// the opposite device state, or pushes the condition's channel away from
// the required pole.
func Blocks(a Effect, c Condition) bool {
	if c.Channel == ChanNone || !roomsMatch(a.Room, c.Room) {
		return false
	}
	if a.Device == c.Device && a.Channel == c.Channel &&
		a.State == OppositeState(c.State) && a.State != "" {
		return true
	}
	want := StateSign(c.State)
	if want == 0 {
		return false
	}
	for _, d := range a.Env {
		if d.Channel == c.Channel && d.Sign == -want {
			return true
		}
	}
	return false
}

// RuleCanTrigger reports the strongest mechanism by which any action of a
// triggers the condition of b.
func RuleCanTrigger(a, b *Rule) MatchKind {
	best := NoMatch
	for _, eff := range a.Actions {
		k := CanTrigger(eff, b.Trigger)
		if k > best {
			best = k
		}
	}
	return best
}

// Conflicts reports whether two effects write contradictory states to the
// same device and channel (the "action conflict" vulnerability pattern:
// water valve opening and closing).
func Conflicts(a, b Effect) bool {
	return a.Device == b.Device && a.Room == b.Room && a.Channel == b.Channel &&
		a.State != b.State && OppositeState(a.State) == b.State
}

// Duplicates reports whether two effects from different rules perform the
// same physical state change on the same device instance ("action
// duplicate"). Stateless sink actions (notifications, log rows) are not
// duplicates — repeating them is redundant but not a device-level
// vulnerability.
func Duplicates(a, b Effect) bool {
	return a.Device == b.Device && a.Room == b.Room &&
		a.Channel == b.Channel && a.State == b.State && StateSign(a.State) != 0
}

// ActionPhrase renders an effect as natural language ("turn on the kitchen
// water valve").
func (e Effect) ActionPhrase() string {
	dev := e.Device
	if e.Room != "" {
		dev = e.Room + " " + dev
	}
	return fmt.Sprintf("%s the %s", e.Verb, dev)
}

// ConditionPhrase renders a condition as natural language ("motion is
// detected", "temperature is high", "lights are on").
func (c Condition) ConditionPhrase() string {
	switch c.Channel {
	case ChanTime:
		return fmt.Sprintf("it is %s", c.State)
	case ChanVoice:
		return fmt.Sprintf("you say %q", c.State)
	case ChanButton:
		return fmt.Sprintf("the %s is pressed", c.Device)
	}
	dev := c.Device
	if c.Room != "" {
		dev = c.Room + " " + dev
	}
	verb := "is"
	if strings.HasSuffix(dev, "s") {
		verb = "are"
	}
	switch c.State {
	case "detected":
		// "smoke is detected" reads from the sensed quantity, not the
		// sensor: motion sensor → motion.
		return fmt.Sprintf("%s is detected%s", sensedNoun(c), roomSuffix(c.Room))
	case "clear":
		return fmt.Sprintf("%s is clear%s", sensedNoun(c), roomSuffix(c.Room))
	}
	return fmt.Sprintf("the %s %s %s", dev, verb, c.State)
}

// roomSuffix renders " in the <room>" for scoped conditions.
func roomSuffix(room string) string {
	if room == "" {
		return ""
	}
	return " in the " + room
}

// sensedNoun maps a sensing condition to the quantity word used in prose.
func sensedNoun(c Condition) string {
	switch c.Channel {
	case ChanMotion:
		return "motion"
	case ChanSmoke:
		return "smoke"
	case ChanCO:
		return "carbon monoxide"
	case ChanLeak:
		return "a water leak"
	default:
		return c.Device
	}
}
