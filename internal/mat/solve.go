package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a linear system has no stable solution.
var ErrSingular = errors.New("mat: matrix is singular or ill-conditioned")

// Cholesky computes the lower-triangular factor L with A = L·Lᵀ for a
// symmetric positive-definite A. It returns ErrSingular when A is not
// (numerically) positive definite.
func Cholesky(a *Dense) (*Dense, error) {
	n := a.rows
	if a.cols != n {
		panic(fmt.Sprintf("mat: Cholesky of %dx%d", a.rows, a.cols))
	}
	l := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if s <= 1e-14 {
					return nil, ErrSingular
				}
				l.Set(i, j, math.Sqrt(s))
			} else {
				l.Set(i, j, s/l.At(j, j))
			}
		}
	}
	return l, nil
}

// CholeskySolve solves A·x = b given the Cholesky factor L of A.
func CholeskySolve(l *Dense, b []float64) []float64 {
	n := l.rows
	if len(b) != n {
		panic(fmt.Sprintf("mat: CholeskySolve rhs length %d want %d", len(b), n))
	}
	// Forward substitution: L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// Backward substitution: Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x
}

// SolveSPD solves A·x = b for symmetric positive-definite A.
func SolveSPD(a *Dense, b []float64) ([]float64, error) {
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	return CholeskySolve(l, b), nil
}

// WeightedLeastSquares solves min_w Σ_i c_i (y_i − x_i·w)² with an optional
// ridge term to keep the normal equations well conditioned. X is n×d, y and
// weights have length n. This is the solver behind kernel SHAP (Eq. 6 in the
// paper), where the weights are the Shapley kernel coefficients.
func WeightedLeastSquares(x *Dense, y, weights []float64, ridge float64) ([]float64, error) {
	n, d := x.Dims()
	if len(y) != n || len(weights) != n {
		panic(fmt.Sprintf("mat: WLS %d rows, %d targets, %d weights", n, len(y), len(weights)))
	}
	// Normal equations: (XᵀCX + λI) w = XᵀCy.
	ata := NewDense(d, d)
	atb := make([]float64, d)
	for i := 0; i < n; i++ {
		c := weights[i]
		if c == 0 {
			continue
		}
		xi := x.Row(i)
		for a := 0; a < d; a++ {
			va := c * xi[a]
			if va == 0 {
				continue
			}
			row := ata.Row(a)
			for b := 0; b < d; b++ {
				row[b] += va * xi[b]
			}
			atb[a] += va * y[i]
		}
	}
	for a := 0; a < d; a++ {
		ata.Add(a, a, ridge)
	}
	w, err := SolveSPD(ata, atb)
	if err != nil {
		// Retry with a heavier ridge before giving up: the SHAP sampling can
		// produce rank-deficient design matrices for tiny coalitions.
		for a := 0; a < d; a++ {
			ata.Add(a, a, 1e-6+ridge*10)
		}
		w, err = SolveSPD(ata, atb)
		if err != nil {
			return nil, err
		}
	}
	return w, nil
}

// SolveGauss solves the square system A·x = b with partial pivoting.
// A and b are left unmodified.
func SolveGauss(a *Dense, b []float64) ([]float64, error) {
	n := a.rows
	if a.cols != n || len(b) != n {
		panic(fmt.Sprintf("mat: SolveGauss %dx%d with rhs %d", a.rows, a.cols, len(b)))
	}
	m := a.Clone()
	x := append([]float64(nil), b...)
	for col := 0; col < n; col++ {
		// Partial pivot.
		p := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m.At(r, col)) > math.Abs(m.At(p, col)) {
				p = r
			}
		}
		if math.Abs(m.At(p, col)) < 1e-12 {
			return nil, ErrSingular
		}
		if p != col {
			pr, cr := m.Row(p), m.Row(col)
			for j := range pr {
				pr[j], cr[j] = cr[j], pr[j]
			}
			x[p], x[col] = x[col], x[p]
		}
		piv := m.At(col, col)
		for r := col + 1; r < n; r++ {
			f := m.At(r, col) / piv
			if f == 0 {
				continue
			}
			rr, cr := m.Row(r), m.Row(col)
			for j := col; j < n; j++ {
				rr[j] -= f * cr[j]
			}
			x[r] -= f * x[col]
		}
	}
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		ri := m.Row(i)
		for j := i + 1; j < n; j++ {
			s -= ri[j] * x[j]
		}
		x[i] = s / ri[i]
	}
	return x, nil
}

// PCA projects the rows of x (n×d, not centered) onto its top-k principal
// components using orthogonal power iteration. It returns the n×k projected
// coordinates. Used to initialise t-SNE (Fig. 6).
func PCA(x *Dense, k int, iters int) *Dense {
	n, d := x.Dims()
	if k > d {
		k = d
	}
	// Center.
	centered := x.Clone()
	meanVec := make([]float64, d)
	for i := 0; i < n; i++ {
		Axpy(meanVec, x.Row(i), 1/float64(n))
	}
	for i := 0; i < n; i++ {
		Axpy(centered.Row(i), meanVec, -1)
	}
	// Covariance (d×d).
	cov := NewDense(d, d)
	MulTTo(cov, centered, centered)
	cov.Scale(1 / float64(n))
	// Orthogonal power iteration for top-k eigenvectors.
	comps := NewDense(d, k)
	for j := 0; j < k; j++ {
		for i := 0; i < d; i++ {
			// Deterministic pseudo-random start vector.
			comps.Set(i, j, math.Sin(float64(i*31+j*7+1)))
		}
	}
	tmp := NewDense(d, k)
	for it := 0; it < iters; it++ {
		MulTo(tmp, cov, comps)
		comps, tmp = tmp, comps
		gramSchmidt(comps)
	}
	out := NewDense(n, k)
	MulTo(out, centered, comps)
	return out
}

// gramSchmidt orthonormalises the columns of m in place.
func gramSchmidt(m *Dense) {
	r, c := m.Dims()
	for j := 0; j < c; j++ {
		for p := 0; p < j; p++ {
			var dot float64
			for i := 0; i < r; i++ {
				dot += m.At(i, j) * m.At(i, p)
			}
			for i := 0; i < r; i++ {
				m.Add(i, j, -dot*m.At(i, p))
			}
		}
		var norm float64
		for i := 0; i < r; i++ {
			norm += m.At(i, j) * m.At(i, j)
		}
		norm = math.Sqrt(norm)
		if norm < 1e-12 {
			norm = 1
		}
		for i := 0; i < r; i++ {
			m.Set(i, j, m.At(i, j)/norm)
		}
	}
}
