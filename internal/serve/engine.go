package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"fexiot/internal/gnn"
	"fexiot/internal/graph"
	"fexiot/internal/mat"
	"fexiot/internal/obs"
	"fexiot/internal/supervise"
)

// ErrNotReady reports a request against an engine with no published
// snapshot yet (no training has completed). HTTP maps it to 503.
var ErrNotReady = errors.New("serve: no model snapshot published yet")

// ErrClosed reports a request against a closed engine.
var ErrClosed = errors.New("serve: engine closed")

// ErrOverloaded reports a request shed because the pending-request queue
// was full: the engine fails fast so callers can back off and retry,
// instead of parking the request until its deadline expires. HTTP maps it
// to 429 with a Retry-After hint.
var ErrOverloaded = errors.New("serve: overloaded, queue full")

// ErrPanicked reports a request whose inference panicked. The worker is
// recovered and restarted under supervision; only this request fails. HTTP
// maps it to 500.
var ErrPanicked = errors.New("serve: inference panicked")

// Options tunes the engine. The zero value is usable: worker count follows
// mat.Parallelism (the dense-kernel sizing discipline), the queue holds
// 4× workers, batching is off.
type Options struct {
	// Workers bounds the concurrent inference goroutines (0 = the current
	// mat.Parallelism setting).
	Workers int
	// QueueDepth bounds the pending-request queue (0 = 4 × Workers). A
	// request arriving at a full queue is shed immediately with
	// ErrOverloaded — overload degrades into fast, explicit rejections the
	// caller can back off from, never into silent queueing until timeout.
	QueueDepth int
	// BatchSize > 1 enables micro-batching: a worker that dequeues a
	// detect request drains up to BatchSize−1 more same-shape (equal node
	// count) detect requests arriving within BatchWindow and answers them
	// with one batched forward pass.
	BatchSize int
	// BatchWindow is how long a worker waits to fill a batch (0 = 2ms,
	// only meaningful when BatchSize > 1).
	BatchWindow time.Duration
	// MaxBodyBytes bounds HTTP request bodies on the mounted endpoints
	// (0 = 1 MiB); oversized bodies are rejected with 413.
	MaxBodyBytes int64
	// Metrics, when non-nil, receives the fexiot_serve_* telemetry.
	Metrics *obs.Registry
	// FaultHook, when non-nil, is invoked inside the panic-recovered
	// inference region once per worker pass — the chaos-injection seam the
	// resilience tests use to schedule panics and stalls in workers.
	FaultHook func(op string)
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return mat.Parallelism()
}

func (o Options) queueDepth() int {
	if o.QueueDepth > 0 {
		return o.QueueDepth
	}
	return 4 * o.workers()
}

func (o Options) batchWindow() time.Duration {
	if o.BatchWindow > 0 {
		return o.BatchWindow
	}
	return 2 * time.Millisecond
}

func (o Options) maxBodyBytes() int64 {
	if o.MaxBodyBytes > 0 {
		return o.MaxBodyBytes
	}
	return 1 << 20
}

type reqKind int

const (
	reqDetect reqKind = iota
	reqExplain
)

type request struct {
	kind reqKind
	g    *graph.Graph
	ctx  context.Context
	// done is buffered (capacity 1) so a worker can always deliver even
	// when the caller already gave up on its context.
	done chan response
}

type response struct {
	verdict Verdict
	expl    Explanation
	seq     uint64
	err     error
}

// Engine serves Detect/Explain requests from a bounded worker pool against
// the current snapshot. All methods are safe for concurrent use.
//
// The pool is supervised: a panic during inference answers that one
// request with ErrPanicked and restarts the worker with backoff; a worker
// crash-looping past its restart budget trips a circuit that LiveCheck —
// and from there /healthz — reports.
type Engine struct {
	snap    atomic.Pointer[Snapshot]
	reqs    chan *request
	stop    chan struct{}
	wg      sync.WaitGroup
	once    sync.Once
	opts    Options
	m       metrics
	sup     *supervise.Supervisor
	cancel  context.CancelFunc
	started time.Time
	sheds   atomic.Int64
}

// NewEngine starts the supervised worker pool (and the snapshot-age ticker
// when metrics are enabled). The engine serves ErrNotReady until the first
// Publish.
func NewEngine(opts Options) *Engine {
	e := &Engine{
		reqs:    make(chan *request, opts.queueDepth()),
		stop:    make(chan struct{}),
		opts:    opts,
		m:       newMetrics(opts.Metrics),
		started: time.Now(),
	}
	ctx, cancel := context.WithCancel(context.Background())
	e.cancel = cancel
	e.sup = supervise.New(supervise.Options{
		Policy:  supervise.Policy{Backoff: 2 * time.Millisecond, MaxBackoff: 250 * time.Millisecond},
		Metrics: opts.Metrics,
	})
	for i := 0; i < opts.workers(); i++ {
		e.sup.Go(ctx, "serve-worker", e.workerLoop)
	}
	if opts.Metrics != nil {
		e.wg.Add(1)
		go e.ageTicker()
	}
	return e
}

// Publish atomically swaps the live snapshot. In-flight requests finish on
// the snapshot they loaded; requests dequeued after the swap see the new
// one. Nil snapshots are ignored.
func (e *Engine) Publish(s *Snapshot) {
	if s == nil {
		return
	}
	e.snap.Store(s)
	e.m.published.Inc()
	e.m.snapshotSeq.Set(float64(s.Seq()))
	e.m.snapshotAge.Set(time.Since(s.Created()).Seconds())
}

// Snapshot returns the live snapshot (nil before the first Publish) —
// callers that want several reads from one consistent model pin it once.
func (e *Engine) Snapshot() *Snapshot { return e.snap.Load() }

// SnapshotSeq reports the live snapshot's publish sequence number and
// whether one has been published at all. Streaming sessions poll it to
// decide whether a cached rolling verdict still tracks the live model.
func (e *Engine) SnapshotSeq() (uint64, bool) {
	if s := e.snap.Load(); s != nil {
		return s.Seq(), true
	}
	return 0, false
}

// EngineStats is the operational snapshot behind GET /v1/status.
type EngineStats struct {
	Workers            int
	QueueDepth         int
	QueueLength        int
	Shed               int64
	SnapshotSeq        uint64
	SnapshotAgeSeconds float64
	UptimeSeconds      float64
}

// Stats reports pool sizing, queue load, shed count and snapshot identity.
func (e *Engine) Stats() EngineStats {
	st := EngineStats{
		Workers:       e.opts.workers(),
		QueueDepth:    e.opts.queueDepth(),
		QueueLength:   len(e.reqs),
		Shed:          e.sheds.Load(),
		UptimeSeconds: time.Since(e.started).Seconds(),
	}
	if s := e.snap.Load(); s != nil {
		st.SnapshotSeq = s.Seq()
		st.SnapshotAgeSeconds = time.Since(s.Created()).Seconds()
	}
	return st
}

// LiveCheck returns the engine's liveness probe: nil while the worker pool
// is within its restart budget, the tripped circuit's cause once a worker
// has crash-looped to death. Wire it to /healthz.
func (e *Engine) LiveCheck() func() error { return e.sup.Check }

// ReadyCheck returns the engine's readiness probe: nil once a snapshot has
// been published and — when maxAge > 0 — is no older than maxAge, so a
// server whose republisher died eventually stops advertising itself. Wire
// it to /readyz.
func (e *Engine) ReadyCheck(maxAge time.Duration) func() error {
	return func() error {
		select {
		case <-e.stop:
			return ErrClosed
		default:
		}
		s := e.snap.Load()
		if s == nil {
			return ErrNotReady
		}
		if maxAge > 0 {
			if age := time.Since(s.Created()); age > maxAge {
				return fmt.Errorf("serve: snapshot stale: age %s exceeds %s",
					age.Round(time.Millisecond), maxAge)
			}
		}
		return nil
	}
}

// WorkerRestarts reports how many times the supervisor has restarted a
// panicked worker.
func (e *Engine) WorkerRestarts() int64 { return e.sup.Restarts("serve-worker") }

// Detect classifies g on the worker pool. It blocks until a worker
// answers, ctx expires, or the engine closes; the returned sequence number
// identifies the snapshot that served the request. A full queue sheds the
// request immediately with ErrOverloaded.
func (e *Engine) Detect(ctx context.Context, g *graph.Graph) (Verdict, uint64, error) {
	resp := e.submit(ctx, &request{kind: reqDetect, g: g, ctx: ctx})
	return resp.verdict, resp.seq, resp.err
}

// Explain runs the explanation search on the worker pool.
func (e *Engine) Explain(ctx context.Context, g *graph.Graph) (Explanation, uint64, error) {
	resp := e.submit(ctx, &request{kind: reqExplain, g: g, ctx: ctx})
	return resp.expl, resp.seq, resp.err
}

func (e *Engine) submit(ctx context.Context, r *request) response {
	r.done = make(chan response, 1)
	e.m.inflight.Add(1)
	defer e.m.inflight.Add(-1)
	sp := obs.StartSpan(e.m.latency(r.kind))
	defer sp.End()
	select {
	case e.reqs <- r:
		e.m.queueDepth.Set(float64(len(e.reqs)))
	case <-e.stop:
		return response{err: ErrClosed}
	default:
		// Saturated queue: shed now, while the caller can still usefully
		// back off, instead of parking the request until its deadline.
		select {
		case <-e.stop:
			return response{err: ErrClosed}
		default:
		}
		e.m.shed.Inc()
		e.sheds.Add(1)
		return response{err: ErrOverloaded}
	}
	select {
	case resp := <-r.done:
		return resp
	case <-ctx.Done():
		return response{err: ctx.Err()}
	case <-e.stop:
		return response{err: ErrClosed}
	}
}

// Close stops the workers and fails queued requests with ErrClosed. It is
// idempotent and waits for the pool to drain.
func (e *Engine) Close() {
	e.once.Do(func() { close(e.stop) })
	e.cancel()
	e.sup.Wait()
	e.wg.Wait()
}

// workerLoop is one supervised pool member. It returns nil on shutdown; a
// panic during inference surfaces here as an error, handing the goroutine
// back to the supervisor for a backed-off restart (the panicked request
// itself was already answered with ErrPanicked).
func (e *Engine) workerLoop(ctx context.Context) error {
	// Each worker owns a long-lived inference workspace: detect requests
	// run on its recycled tape memory instead of allocating a fresh graph
	// per request. A restarted worker simply builds a new one.
	ws := gnn.NewWorkspace()
	for {
		select {
		case <-e.stop:
			return nil
		case <-ctx.Done():
			return nil
		case r := <-e.reqs:
			e.m.queueDepth.Set(float64(len(e.reqs)))
			if err := e.process(r, ws); err != nil {
				return err
			}
		}
	}
}

// process answers one dequeued request, micro-batching same-shape detect
// requests when enabled. The snapshot is loaded exactly once per batch, so
// every request in it — and each individual request — is answered by a
// single consistent model even if Publish lands mid-flight. The returned
// error is non-nil only when inference panicked (the request was still
// answered); it propagates to the supervisor.
func (e *Engine) process(r *request, ws *gnn.Workspace) error {
	if r.ctx != nil && r.ctx.Err() != nil {
		r.done <- response{err: r.ctx.Err()}
		return nil
	}
	if r.kind == reqDetect && e.opts.BatchSize > 1 {
		return e.processBatch(r, ws)
	}
	snap := e.snap.Load()
	if snap == nil {
		r.done <- response{err: ErrNotReady}
		return nil
	}
	resp, err := e.answer(snap, r, ws)
	r.done <- resp
	return err
}

// answer runs one request's inference inside the panic-recovery guard: a
// panic becomes an ErrPanicked response for the caller plus a non-nil
// error for the supervisor, never an unwound process.
func (e *Engine) answer(snap *Snapshot, r *request, ws *gnn.Workspace) (resp response, err error) {
	defer func() {
		if v := recover(); v != nil {
			e.m.panics.Inc()
			err = fmt.Errorf("%w: %v", ErrPanicked, v)
			resp = response{err: err}
		}
	}()
	if h := e.opts.FaultHook; h != nil {
		h("infer")
	}
	switch r.kind {
	case reqExplain:
		return response{expl: snap.Explain(r.g), seq: snap.Seq()}, nil
	default:
		return response{verdict: snap.DetectWith(ws, r.g), seq: snap.Seq()}, nil
	}
}

// detectBatch runs one batched forward pass inside the panic-recovery
// guard.
func (e *Engine) detectBatch(snap *Snapshot, gs []*graph.Graph) (vs []Verdict, err error) {
	defer func() {
		if v := recover(); v != nil {
			e.m.panics.Inc()
			err = fmt.Errorf("%w: %v", ErrPanicked, v)
		}
	}()
	if h := e.opts.FaultHook; h != nil {
		h("infer")
	}
	return snap.DetectBatch(gs), nil
}

// processBatch drains up to BatchSize−1 further detect requests with the
// same node count arriving within BatchWindow, then answers the whole
// batch with one DetectBatch pass. Requests that do not fit the batch
// (explain, different shape) are answered individually afterwards by the
// same worker. Every held request is answered even when a pass panics.
func (e *Engine) processBatch(first *request, ws *gnn.Workspace) error {
	batch := []*request{first}
	var leftover []*request
	shape := first.g.N()
	timer := time.NewTimer(e.opts.batchWindow())
	defer timer.Stop()
fill:
	for len(batch) < e.opts.BatchSize {
		select {
		case r := <-e.reqs:
			if r.ctx != nil && r.ctx.Err() != nil {
				r.done <- response{err: r.ctx.Err()}
				continue
			}
			if r.kind == reqDetect && r.g.N() == shape {
				batch = append(batch, r)
			} else {
				leftover = append(leftover, r)
			}
		case <-timer.C:
			break fill
		case <-e.stop:
			// Shutting down: fail everything we hold.
			for _, r := range append(batch, leftover...) {
				r.done <- response{err: ErrClosed}
			}
			return nil
		}
	}
	e.m.batchSize.Observe(float64(len(batch)))
	var failErr error
	snap := e.snap.Load()
	if snap == nil {
		for _, r := range batch {
			r.done <- response{err: ErrNotReady}
		}
	} else {
		gs := make([]*graph.Graph, len(batch))
		for i, r := range batch {
			gs[i] = r.g
		}
		verdicts, err := e.detectBatch(snap, gs)
		if err != nil {
			failErr = err
			for _, r := range batch {
				r.done <- response{err: err}
			}
		} else {
			for i, r := range batch {
				r.done <- response{verdict: verdicts[i], seq: snap.Seq()}
			}
		}
	}
	for _, r := range leftover {
		if err := e.process(r, ws); err != nil && failErr == nil {
			failErr = err
		}
	}
	return failErr
}

// ageTicker keeps the snapshot-age gauge current between publishes.
func (e *Engine) ageTicker() {
	defer e.wg.Done()
	t := time.NewTicker(250 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-e.stop:
			return
		case <-t.C:
			if s := e.snap.Load(); s != nil {
				e.m.snapshotAge.Set(time.Since(s.Created()).Seconds())
			}
		}
	}
}
