package fedproto

import (
	"context"
	"net"
	"sync"
	"testing"

	"fexiot/internal/autodiff"
	"fexiot/internal/embed"
	"fexiot/internal/fusion"
	"fexiot/internal/gnn"
	"fexiot/internal/graph"
	"fexiot/internal/mat"
)

func TestEncodeApplyRoundTrip(t *testing.T) {
	m := gnn.NewGIN(16, 8, 4, 1)
	p := m.Params()
	layers := make([]int, p.NumLayers())
	for i := range layers {
		layers[i] = i
	}
	payloads := EncodeLayers(p, layers, map[int]float64{0: 1.5})
	if len(payloads) != p.NumLayers() {
		t.Fatalf("payload count %d", len(payloads))
	}
	if payloads[0].UpdateNorm != 1.5 {
		t.Fatal("update norm lost")
	}
	// Apply into a fresh model of the same shape.
	m2 := gnn.NewGIN(16, 8, 4, 99)
	if err := ApplyLayers(m2.Params(), payloads); err != nil {
		t.Fatal(err)
	}
	if mat.Norm2(m2.Params().Sub(p).Flatten()) != 0 {
		t.Fatal("round trip changed weights")
	}
	// Shape mismatch is rejected.
	m3 := gnn.NewGIN(16, 12, 4, 1)
	if err := ApplyLayers(m3.Params(), payloads); err == nil {
		t.Fatal("shape mismatch must error")
	}
}

func TestLayerNorms(t *testing.T) {
	m := gnn.NewGIN(16, 8, 4, 1)
	before := m.Params().Clone()
	m.Params().Get("gin0.w1").Add(0, 0, 2)
	norms := LayerNorms(before, m.Params())
	if norms[0] != 2 {
		t.Fatalf("layer 0 norm %v want 2", norms[0])
	}
	for l := 1; l < m.Params().NumLayers(); l++ {
		if norms[l] != 0 {
			t.Fatalf("layer %d norm %v want 0", l, norms[l])
		}
	}
}

// TestEndToEndTCP runs a real server with three clients over loopback and
// checks that training synchronises weights layer-wise and that bytes are
// accounted.
func TestEndToEndTCP(t *testing.T) {
	enc := embed.NewEncoder(16, 24)
	pool := fusion.MultiHomePool(3, 20, 15, nil)
	b := fusion.NewBuilder(5, enc)
	// The Builder and its Encoder memoise internally and are not safe for
	// concurrent use; build every client's dataset up front.
	mkData := func(n int) []*graph.Graph {
		out := make([]*graph.Graph, n)
		for i := range out {
			out[i] = b.OfflineSized(pool)
		}
		return out
	}
	datasets := make([][]*graph.Graph, 3)
	for i := range datasets {
		datasets[i] = mkData(20)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	dim := fusion.WordFeatureDim(enc)
	base := gnn.NewGIN(dim, 8, 4, 100)
	const clients = 3
	const rounds = 2

	srv := NewServer(ServerConfig{
		Addr:      addr,
		Clients:   clients,
		Rounds:    rounds,
		Eps1:      0.4,
		Eps2:      0.95,
		NumLayers: base.Params().NumLayers(),
	})
	serverBytes := make(chan int64, 1)
	serverErr := make(chan error, 1)
	go func() {
		total, err := srv.Run(context.Background())
		serverBytes <- total
		serverErr <- err
	}()

	models := make([]gnn.Model, clients)
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			m := base.Fresh(int64(id))
			m.Params().CopyFrom(base.Params())
			models[id] = m
			data := datasets[id]
			opt := autodiff.NewAdam(0.005)
			cfg := gnn.DefaultTrainConfig(int64(id))
			cfg.PairsPerEpoch = 10

			var conn *Conn
			for try := 0; try < 50; try++ {
				raw, err := net.Dial("tcp", addr)
				if err == nil {
					conn = Wrap(raw)
					break
				}
			}
			if conn == nil {
				errs[id] = net.ErrClosed
				return
			}
			defer conn.Close()
			errs[id] = RunClientLoop(context.Background(), conn, id, len(data), m.Params(),
				func(round int) map[int]float64 {
					before := m.Params().Clone()
					cfg.Seed = int64(id*100 + round)
					gnn.TrainContrastive(m, data, cfg, opt)
					return LayerNorms(before, m.Params())
				})
		}(id)
	}
	wg.Wait()
	for id, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", id, err)
		}
	}
	if err := <-serverErr; err != nil {
		t.Fatalf("server: %v", err)
	}
	total := <-serverBytes
	if total <= 0 {
		t.Fatal("no bytes accounted")
	}

	// After the final aggregated model is installed, clients in the same
	// cluster share weights; with these thresholds most runs keep one
	// cluster, so all three models should agree on at least layer 0.
	l0 := models[0].Params().FlattenLayer(0)
	agree := 0
	for _, m := range models[1:] {
		other := m.Params().FlattenLayer(0)
		same := true
		for i := range l0 {
			if l0[i] != other[i] {
				same = false
				break
			}
		}
		if same {
			agree++
		}
	}
	if agree == 0 {
		t.Fatal("no client shares layer-0 weights with client 0 after aggregation")
	}
}
