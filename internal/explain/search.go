package explain

import (
	"fmt"
	"sort"

	"fexiot/internal/graph"
	"fexiot/internal/rng"
)

// RewardFunc scores a candidate subgraph of g under model h; the three
// explanation methods differ only in this function. The reward draws all
// randomness from the supplied generator — never from package-level or
// struct-shared state — so two searches with the same config are
// bit-identical even when they run concurrently.
type RewardFunc func(h ScoreFunc, g *graph.Graph, sub []int, r *rng.RNG) float64

// SearchConfig parameterises Algorithm 2.
type SearchConfig struct {
	Iterations    int     // I: MCBS playouts
	KernelSamples int     // K: kernel SHAP coalitions per evaluation
	MinNodes      int     // N_min: smallest admissible explanation
	Beam          int     // B_level: beam width per level
	Lambda        float64 // exploration/exploitation balance in Eq. (7)
	Seed          int64
}

// DefaultSearchConfig gives the settings used in the evaluation.
func DefaultSearchConfig(seed int64) SearchConfig {
	return SearchConfig{Iterations: 5, KernelSamples: 12, MinNodes: 4,
		Beam: 4, Lambda: 1.0, Seed: seed}
}

// Explanation is the output of a search: the selected subgraph (original
// node indices) and its risk score.
type Explanation struct {
	Nodes []int
	Score float64
}

// subKey canonically identifies a node subset.
func subKey(sub []int) string {
	s := append([]int(nil), sub...)
	sort.Ints(s)
	return fmt.Sprint(s)
}

// children enumerates the connected subgraphs reachable by pruning one node
// from sub (keeping the remainder weakly connected in g).
func children(g *graph.Graph, sub []int) [][]int {
	if len(sub) <= 1 {
		return nil
	}
	var out [][]int
	for drop := range sub {
		next := make([]int, 0, len(sub)-1)
		for i, v := range sub {
			if i != drop {
				next = append(next, v)
			}
		}
		if connectedSubset(g, next) {
			out = append(out, next)
		}
	}
	return out
}

// connectedSubset reports weak connectivity of the induced subgraph.
func connectedSubset(g *graph.Graph, sub []int) bool {
	if len(sub) <= 1 {
		return true
	}
	in := map[int]bool{}
	for _, v := range sub {
		in[v] = true
	}
	visited := map[int]bool{sub[0]: true}
	stack := []int{sub[0]}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.Edges {
			var next int
			switch {
			case e.From == cur && in[e.To]:
				next = e.To
			case e.To == cur && in[e.From]:
				next = e.From
			default:
				continue
			}
			if !visited[next] {
				visited[next] = true
				stack = append(stack, next)
			}
		}
	}
	return len(visited) == len(sub)
}

// rootComponent picks the largest weakly connected component as the search
// root N₀.
func rootComponent(g *graph.Graph) []int {
	seen := make([]bool, g.N())
	var best []int
	for i := 0; i < g.N(); i++ {
		if seen[i] {
			continue
		}
		comp := g.ComponentOf(i)
		for _, v := range comp {
			seen[v] = true
		}
		if len(comp) > len(best) {
			best = comp
		}
	}
	return best
}

// Search runs the Monte Carlo beam search of Algorithm 2 with the supplied
// reward. Each playout descends from the root, keeping the Beam best
// children per level and choosing the next node by Q(N,a) + λ·R(N,a)
// (Eq. 7); subgraphs reaching N_min nodes are collected and the best-scoring
// one is returned.
func Search(h ScoreFunc, g *graph.Graph, cfg SearchConfig, reward RewardFunc) Explanation {
	root := rootComponent(g)
	if len(root) == 0 {
		return Explanation{}
	}
	if len(root) <= cfg.MinNodes {
		return Explanation{Nodes: root,
			Score: reward(h, g, root, rng.New(cfg.Seed))}
	}
	r := rng.New(cfg.Seed)

	// Q statistics across playouts.
	visits := map[string]int{}
	totalReward := map[string]float64{}
	rewardCache := map[string]float64{}
	evalReward := func(sub []int) float64 {
		k := subKey(sub)
		if v, ok := rewardCache[k]; ok {
			return v
		}
		// Each cache miss gets its own generator at a deterministic
		// cache-ordinal offset, so the reward stream is a pure function of
		// the config regardless of evaluation interleaving.
		v := reward(h, g, sub, rng.New(cfg.Seed+int64(len(rewardCache))))
		rewardCache[k] = v
		return v
	}

	best := Explanation{Score: -1e18}
	consider := func(sub []int, score float64) {
		if score > best.Score {
			best = Explanation{Nodes: append([]int(nil), sub...), Score: score}
		}
	}

	for it := 0; it < cfg.Iterations; it++ {
		cur := append([]int(nil), root...)
		for len(cur) > cfg.MinNodes {
			cands := children(g, cur)
			if len(cands) == 0 {
				break
			}
			// Score candidates; keep the beam.
			type scored struct {
				sub []int
				r   float64
			}
			var ss []scored
			for _, c := range cands {
				ss = append(ss, scored{c, evalReward(c)})
			}
			sort.Slice(ss, func(i, j int) bool { return ss[i].r > ss[j].r })
			beam := cfg.Beam
			if beam > len(ss) {
				beam = len(ss)
			}
			ss = ss[:beam]
			// Eq. (7): argmax Q + λR with a light random tie-break so
			// playouts diversify.
			bestIdx := 0
			bestVal := -1e18
			for i, cand := range ss {
				k := subKey(cand.sub)
				q := 0.0
				if visits[k] > 0 {
					q = totalReward[k] / float64(visits[k])
				}
				val := q + cfg.Lambda*cand.r + 1e-6*r.Float64()
				if val > bestVal {
					bestVal = val
					bestIdx = i
				}
			}
			chosen := ss[bestIdx]
			k := subKey(chosen.sub)
			visits[k]++
			totalReward[k] += chosen.r
			cur = chosen.sub
			consider(cur, chosen.r)
		}
		// Leaf reached (|S| ≤ N_min): record it (line 15, S_l ∪ S_i).
		consider(cur, evalReward(cur))
	}
	return best
}

// FexIoTExplain runs Algorithm 2 with the kernel-SHAP reward — the paper's
// method.
func FexIoTExplain(h ScoreFunc, g *graph.Graph, cfg SearchConfig) Explanation {
	return Search(h, g, cfg, func(h ScoreFunc, g *graph.Graph, sub []int, r *rng.RNG) float64 {
		return KernelSHAPRNG(h, g, sub, cfg.KernelSamples, r)
	})
}

// SubgraphX runs the same search with the Shapley-value reward under the
// player-independence assumption (Yuan et al. 2021).
func SubgraphX(h ScoreFunc, g *graph.Graph, cfg SearchConfig) Explanation {
	return Search(h, g, cfg, func(h ScoreFunc, g *graph.Graph, sub []int, r *rng.RNG) float64 {
		return ShapleyValueRNG(h, g, sub, cfg.KernelSamples, r)
	})
}

// MCTSGNN runs the search rewarding raw prediction scores of the subgraph —
// the MCTS_GNN baseline, which the paper shows cannot capture connections
// among graph structures.
func MCTSGNN(h ScoreFunc, g *graph.Graph, cfg SearchConfig) Explanation {
	return Search(h, g, cfg, func(h ScoreFunc, g *graph.Graph, sub []int, _ *rng.RNG) float64 {
		return h(maskGraph(g, sub))
	})
}
