package fed

import (
	"math"
	"testing"

	"fexiot/internal/autodiff"
	"fexiot/internal/mat"
)

// uniformW builds uniform normalised weights for n clients.
func uniformW(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / float64(n)
	}
	return w
}

func TestMeanAggMatchesWeightedMean(t *testing.T) {
	vecs := [][]float64{{1, 2}, {3, 6}}
	got := MeanAgg{}.Aggregate(vecs, []float64{0.75, 0.25})
	if got[0] != 1.5 || got[1] != 3 {
		t.Fatalf("weighted mean %v, want [1.5 3]", got)
	}
}

// TestTrimmedMeanDropsOutliers pins the closed form: with one poisoned
// client per tail trimmed, a 1000× scaled coordinate cannot move the
// aggregate at all.
func TestTrimmedMeanDropsOutliers(t *testing.T) {
	vecs := [][]float64{{1}, {2}, {3}, {1000}, {-1000}}
	got := TrimmedMeanAgg{Trim: 1}.Aggregate(vecs, uniformW(5))
	if got[0] != 2 {
		t.Fatalf("trimmed mean %v, want 2", got[0])
	}
	// Auto trim for n=5 is floor(4/3)=1 — same result.
	if got := (TrimmedMeanAgg{}).Aggregate(vecs, uniformW(5)); got[0] != 2 {
		t.Fatalf("auto-trimmed mean %v, want 2", got[0])
	}
	// Trim so large it would empty the window degrades instead of panicking.
	if got := (TrimmedMeanAgg{Trim: 10}).Aggregate(vecs, uniformW(5)); got[0] != 2 {
		t.Fatalf("over-trimmed mean %v, want 2 (median survivor)", got[0])
	}
}

func TestMedianAggOddEven(t *testing.T) {
	odd := [][]float64{{1, 5}, {2, 6}, {100, -100}}
	got := MedianAgg{}.Aggregate(odd, uniformW(3))
	if got[0] != 2 || got[1] != 5 {
		t.Fatalf("odd median %v, want [2 5]", got)
	}
	even := [][]float64{{1}, {3}, {5}, {1000}}
	if got := (MedianAgg{}).Aggregate(even, uniformW(4)); got[0] != 4 {
		t.Fatalf("even median %v, want 4", got[0])
	}
}

// TestNormClipBoundsOutlierPull pins the centered-clipping property: the
// poisoned client's pull is bounded by the clip radius, so the aggregate
// stays within clip of the honest coordinate-wise median.
func TestNormClipBoundsOutlierPull(t *testing.T) {
	vecs := [][]float64{{1, 0}, {1.1, 0}, {0.9, 0}, {1000, 0}}
	got := NormClipAgg{Clip: 0.5}.Aggregate(vecs, uniformW(4))
	// Center is the coordinate-wise median (1.05 at coord 0); every
	// client's deviation is clipped to ≤ 0.5, so the result stays within
	// the clip radius of the honest neighbourhood.
	if math.Abs(got[0]-1.05) > 0.5 {
		t.Fatalf("norm-clipped mean %v strayed more than clip from median 1.05", got[0])
	}
	// Unclipped FedAvg would be ≈ 250.75 — verify the defence actually bit.
	if got[0] > 2 {
		t.Fatalf("norm-clipped mean %v, outlier dominated", got[0])
	}
	// Auto radius (median deviation norm) must also hold the line.
	if got := (NormClipAgg{}).Aggregate(vecs, uniformW(4)); got[0] > 2 {
		t.Fatalf("auto norm-clipped mean %v, outlier dominated", got[0])
	}
}

// TestKrumExcludesOutlier pins Krum selection: the far-away Byzantine
// vector scores worst and never enters the aggregate.
func TestKrumExcludesOutlier(t *testing.T) {
	vecs := [][]float64{{1, 1}, {1.1, 1}, {0.9, 1}, {1, 1.1}, {500, -500}}
	w := uniformW(5)
	one := KrumAgg{M: 1, F: 1}.Aggregate(vecs, w)
	if math.Abs(one[0]) > 2 || math.Abs(one[1]) > 2 {
		t.Fatalf("krum selected the outlier: %v", one)
	}
	multi := KrumAgg{F: 1}.Aggregate(vecs, w)
	if math.Abs(multi[0]-1) > 0.2 || math.Abs(multi[1]-1) > 0.2 {
		t.Fatalf("multi-krum aggregate %v, want ≈ [1 1]", multi)
	}
	// Tiny federations degrade to the mean instead of panicking.
	small := KrumAgg{}.Aggregate([][]float64{{2}, {4}}, uniformW(2))
	if small[0] != 3 {
		t.Fatalf("n=2 krum %v, want mean 3", small[0])
	}
}

func TestNewAggregatorRegistry(t *testing.T) {
	for _, name := range AggregatorNames() {
		a, err := NewAggregator(name)
		if err != nil {
			t.Fatalf("NewAggregator(%q): %v", name, err)
		}
		if a.Name() != name && !(name == "fedavg" && a.Name() == "fedavg") {
			t.Fatalf("NewAggregator(%q).Name() = %q", name, a.Name())
		}
	}
	if a, err := NewAggregator(""); err != nil || a.Name() != "fedavg" {
		t.Fatalf("empty name must select fedavg, got %v, %v", a, err)
	}
	if _, err := NewAggregator("bogus"); err == nil {
		t.Fatal("unknown aggregator must error")
	}
}

// TestAggregateParamsRoundTrip checks the flatten/aggregate/unflatten path
// writes robust aggregates back into the right tensors, and that the
// FedAvg path stays bit-identical to autodiff.WeightedAverage.
func TestAggregateParamsRoundTrip(t *testing.T) {
	mk := func(a, b, c, d float64) *autodiff.ParamSet {
		p := autodiff.NewParamSet()
		p.Register("l0.w", 0, mat.NewDenseData(1, 2, []float64{a, b}))
		p.Register("l1.w", 1, mat.NewDenseData(1, 2, []float64{c, d}))
		return p
	}
	sets := []*autodiff.ParamSet{mk(1, 2, 3, 4), mk(3, 4, 5, 6), mk(1000, -1000, 1000, -1000)}
	w := []float64{0.4, 0.4, 0.2}

	dst := mk(0, 0, 0, 0)
	AggregateParams(MedianAgg{}, dst, sets, w)
	want := []float64{3, 2, 5, 4}
	for i, v := range dst.Flatten() {
		if v != want[i] {
			t.Fatalf("median params %v, want %v", dst.Flatten(), want)
		}
	}

	// Layer-wise: only layer 1 changes.
	dst = mk(-1, -1, 0, 0)
	AggregateParamsLayer(MedianAgg{}, dst, sets, w, 1)
	got := dst.Flatten()
	if got[0] != -1 || got[1] != -1 || got[2] != 5 || got[3] != 4 {
		t.Fatalf("layer median %v, want [-1 -1 5 4]", got)
	}

	// FedAvg path must equal WeightedAverage exactly.
	a1, a2 := mk(0, 0, 0, 0), mk(0, 0, 0, 0)
	AggregateParams(MeanAgg{}, a1, sets, w)
	autodiff.WeightedAverage(a2, sets, w)
	for i, v := range a1.Flatten() {
		if v != a2.Flatten()[i] {
			t.Fatalf("mean path diverged from WeightedAverage at %d", i)
		}
	}
}

func TestCheckFinite(t *testing.T) {
	if i := mat.CheckFinite([]float64{1, 2, 3}); i != -1 {
		t.Fatalf("finite vector flagged at %d", i)
	}
	if i := mat.CheckFinite([]float64{1, math.NaN(), 3}); i != 1 {
		t.Fatalf("NaN index %d, want 1", i)
	}
	if i := mat.CheckFinite([]float64{math.Inf(-1)}); i != 0 {
		t.Fatalf("-Inf index %d, want 0", i)
	}
	if mat.AllFinite([]float64{0, math.Inf(1)}) {
		t.Fatal("AllFinite missed +Inf")
	}
}
