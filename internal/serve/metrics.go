package serve

import "fexiot/internal/obs"

// metrics bundles the fexiot_serve_* handles, resolved once at engine
// construction. Every obs handle is nil-safe, so a nil registry keeps the
// serving hot path on the zero-overhead branch.
type metrics struct {
	detectDur   *obs.Histogram
	explainDur  *obs.Histogram
	inflight    *obs.Gauge
	queueDepth  *obs.Gauge
	batchSize   *obs.Histogram
	snapshotAge *obs.Gauge
	snapshotSeq *obs.Gauge
	published   *obs.Counter
	shed        *obs.Counter
	panics      *obs.Counter
	writeErrs   *obs.Counter
}

func newMetrics(r *obs.Registry) metrics {
	if r == nil {
		return metrics{}
	}
	dur := r.HistogramVec("fexiot_serve_request_duration_seconds",
		"end-to-end request latency (queue wait + inference)",
		obs.DefBuckets, "endpoint")
	return metrics{
		detectDur:  dur.With("detect"),
		explainDur: dur.With("explain"),
		inflight: r.Gauge("fexiot_serve_inflight",
			"requests currently queued or executing"),
		queueDepth: r.Gauge("fexiot_serve_queue_depth",
			"pending requests in the worker queue"),
		batchSize: r.Histogram("fexiot_serve_batch_size",
			"detect requests answered per batched forward pass",
			[]float64{1, 2, 4, 8, 16, 32}),
		snapshotAge: r.Gauge("fexiot_serve_snapshot_age_seconds",
			"seconds since the live snapshot was frozen"),
		snapshotSeq: r.Gauge("fexiot_serve_snapshot_seq",
			"publish sequence number of the live snapshot"),
		published: r.Counter("fexiot_serve_snapshots_published_total",
			"snapshots published to the engine"),
		shed: r.Counter("fexiot_serve_shed_total",
			"requests rejected immediately because the queue was full"),
		panics: r.Counter("fexiot_serve_panics_total",
			"panics recovered in inference workers and HTTP handlers"),
		writeErrs: r.Counter("fexiot_serve_response_write_errors_total",
			"JSON responses whose network write failed after the status line"),
	}
}

func (m metrics) latency(kind reqKind) *obs.Histogram {
	if kind == reqExplain {
		return m.explainDur
	}
	return m.detectDur
}
