package fedproto

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"fexiot/internal/obs"
)

// scrape fetches one observability endpoint from the live obs server.
func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return string(body)
}

// metricValue extracts the value of an unlabelled sample from a Prometheus
// text exposition, or -1 when the metric is absent.
func metricValue(text, name string) float64 {
	for _, line := range strings.Split(text, "\n") {
		rest, ok := strings.CutPrefix(line, name+" ")
		if !ok {
			continue
		}
		if v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64); err == nil {
			return v
		}
	}
	return -1
}

// TestObservabilityEndToEnd runs a real two-client loopback federation with
// an observability registry attached, scrapes the live /metrics endpoint
// mid-run and after completion, and asserts that the acceptance metrics
// exist and that round counters advance.
func TestObservabilityEndToEnd(t *testing.T) {
	reg := obs.NewRegistry()
	hs, err := obs.StartHTTP("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer hs.Close()
	base := "http://" + hs.Addr()

	const rounds = 3
	addr := freeAddr(t)
	srv := NewServer(ServerConfig{
		Addr:         addr,
		Clients:      2,
		Rounds:       rounds,
		Eps1:         0.4,
		Eps2:         0.95,
		NumLayers:    2,
		RoundTimeout: 10 * time.Second,
		Metrics:      reg,
	})
	serverDone := make(chan error, 1)
	go func() {
		_, err := srv.Run(context.Background())
		serverDone <- err
	}()

	// A pre-run scrape must already expose the registered families with
	// zero counts (the golden-path "dashboards light up before round 1").
	early := scrape(t, base+"/metrics")
	for _, name := range []string{
		"fexiot_round_duration_seconds",
		"fexiot_round_responders",
		"fexiot_clients_evicted_total",
		"fexiot_bytes_received_total",
	} {
		if !strings.Contains(early, "# TYPE "+name+" ") {
			t.Fatalf("pre-run /metrics missing family %s:\n%s", name, early)
		}
	}
	if got := metricValue(early, "fexiot_rounds_completed_total"); got != 0 {
		t.Fatalf("rounds_completed before the run = %v, want 0", got)
	}

	var wg sync.WaitGroup
	for id := 0; id < 2; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := scriptParams()
			_, err := RunClientSession(context.Background(), ClientConfig{
				Addr: addr, ID: id, DataSize: 10 + id,
				OpTimeout: 10 * time.Second, Seed: int64(id),
			}, p, func(round int) map[int]float64 {
				addDelta(p, 0.1)
				return zeroNorms(p)
			})
			if err != nil {
				t.Errorf("client %d: %v", id, err)
			}
		}(id)
	}
	wg.Wait()
	if err := <-serverDone; err != nil {
		t.Fatalf("server: %v", err)
	}

	text := scrape(t, base+"/metrics")
	if got := metricValue(text, "fexiot_rounds_completed_total"); got != rounds {
		t.Fatalf("fexiot_rounds_completed_total = %v, want %d\n%s", got, rounds, text)
	}
	if got := metricValue(text, "fexiot_round_responders"); got != 2 {
		t.Fatalf("fexiot_round_responders = %v, want 2", got)
	}
	if got := metricValue(text, "fexiot_clients_evicted_total"); got != 0 {
		t.Fatalf("fexiot_clients_evicted_total = %v, want 0", got)
	}
	if got := metricValue(text, "fexiot_bytes_received_total"); got <= 0 {
		t.Fatalf("fexiot_bytes_received_total = %v, want > 0", got)
	}
	if got := metricValue(text, "fexiot_bytes_sent_total"); got <= 0 {
		t.Fatalf("fexiot_bytes_sent_total = %v, want > 0", got)
	}
	if got := metricValue(text, "fexiot_round_duration_seconds_count"); got != rounds {
		t.Fatalf("fexiot_round_duration_seconds_count = %v, want %d", got, rounds)
	}
	if !strings.Contains(text, `fexiot_aggregate_duration_seconds_count{rule="fedavg"} 3`) {
		t.Fatalf("aggregate histogram missing fedavg rule label:\n%s", text)
	}

	// /statusz mirrors the same counters as structured JSON.
	var st obs.StatusSnapshot
	if err := json.Unmarshal([]byte(scrape(t, base+"/statusz")), &st); err != nil {
		t.Fatalf("statusz: %v", err)
	}
	series, ok := st.Metrics["fexiot_rounds_completed_total"]
	if !ok || len(series) != 1 || series[0].Value != rounds {
		t.Fatalf("statusz rounds_completed = %+v, want value %d", series, rounds)
	}

	// pprof is live on the same mux.
	if body := scrape(t, base+"/debug/pprof/cmdline"); body == "" {
		t.Fatal("pprof cmdline empty")
	}
}
