package mat

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// TestArenaLeaseZeroed pins the core NewDense-equivalence contract: every
// lease — fresh or recycled, even after the buffer was dirtied — observes
// all-zero memory.
func TestArenaLeaseZeroed(t *testing.T) {
	a := NewArena(0)
	for round := 0; round < 3; round++ {
		buf := a.Lease(37)
		if len(buf) != 37 {
			t.Fatalf("lease length = %d, want 37", len(buf))
		}
		for i, v := range buf {
			if v != 0 {
				t.Fatalf("round %d: leased buf[%d] = %v, want 0", round, i, v)
			}
		}
		for i := range buf {
			buf[i] = float64(i) + 1
		}
		a.Release(buf)
	}
	st := a.Stats()
	if st.Leases != 3 || st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 3 leases / 2 hits / 1 miss", st)
	}
}

// TestArenaDistinctBacking pins alias safety: no two live leases may share
// backing memory, regardless of interleaved releases.
func TestArenaDistinctBacking(t *testing.T) {
	a := NewArena(0)
	live := map[*float64][]float64{}
	rng := rand.New(rand.NewSource(7))
	sizes := []int{4, 16, 16, 64, 256}
	var held [][]float64
	for i := 0; i < 500; i++ {
		if len(held) > 0 && rng.Intn(3) == 0 {
			j := rng.Intn(len(held))
			buf := held[j]
			held = append(held[:j], held[j+1:]...)
			delete(live, &buf[0])
			a.Release(buf)
			continue
		}
		buf := a.Lease(sizes[rng.Intn(len(sizes))])
		if prev, dup := live[&buf[0]]; dup {
			t.Fatalf("iteration %d: lease aliases a live buffer of len %d", i, len(prev))
		}
		live[&buf[0]] = buf
		held = append(held, buf)
	}
}

// TestArenaCap pins the per-class bound: releases beyond maxPerClass are
// dropped, not retained.
func TestArenaCap(t *testing.T) {
	a := NewArena(2)
	bufs := make([][]float64, 5)
	for i := range bufs {
		bufs[i] = a.Lease(8)
	}
	for _, b := range bufs {
		a.Release(b)
	}
	st := a.Stats()
	if want := int64(2 * 8 * 8); st.BytesPooled != want {
		t.Fatalf("BytesPooled = %d, want %d (cap 2 × 8 floats)", st.BytesPooled, want)
	}
	// Only the two retained buffers can come back as hits.
	hits0 := st.Hits
	for i := 0; i < 3; i++ {
		bufs[i] = a.Lease(8)
	}
	st = a.Stats()
	if st.Hits-hits0 != 2 {
		t.Fatalf("hits after cap = %d, want 2", st.Hits-hits0)
	}
}

// TestArenaTrim pins the epoch semantics: classes idle for one full epoch
// are evicted, active classes survive.
func TestArenaTrim(t *testing.T) {
	a := NewArena(0)
	a.Release(a.Lease(10))
	a.Release(a.Lease(20))
	a.Trim() // both classes were touched this epoch: both survive
	if st := a.Stats(); st.Classes != 2 {
		t.Fatalf("classes after first trim = %d, want 2", st.Classes)
	}
	a.Release(a.Lease(10)) // touch only class 10
	a.Trim()               // class 20 was idle: evicted
	st := a.Stats()
	if st.Classes != 1 {
		t.Fatalf("classes after second trim = %d, want 1", st.Classes)
	}
	if st.BytesPooled != 10*8 {
		t.Fatalf("BytesPooled after trim = %d, want 80", st.BytesPooled)
	}
	if st.Trims != 2 {
		t.Fatalf("trims = %d, want 2", st.Trims)
	}
	// The surviving class still serves hits.
	h0 := st.Hits
	a.Lease(10)
	if got := a.Stats().Hits - h0; got != 1 {
		t.Fatalf("post-trim lease hits = %d, want 1", got)
	}
}

// TestArenaDisabled pins the FEXIOT_ARENA=off escape hatch: a disabled
// arena never recycles, restoring pre-arena allocation behaviour.
func TestArenaDisabled(t *testing.T) {
	SetArenaEnabled(false)
	defer SetArenaEnabled(true)
	a := NewArena(0)
	a.Release(a.Lease(8))
	buf := a.Lease(8)
	for i := range buf {
		if buf[i] != 0 {
			t.Fatalf("disabled lease not zeroed at %d", i)
		}
	}
	st := a.Stats()
	if st.Hits != 0 || st.Misses != 2 {
		t.Fatalf("disabled stats = %+v, want 0 hits / 2 misses", st)
	}
	if st.BytesPooled != 0 {
		t.Fatalf("disabled BytesPooled = %d, want 0", st.BytesPooled)
	}
}

// TestArenaConcurrent hammers one arena from many goroutines; run under
// -race this pins the locking discipline.
func TestArenaConcurrent(t *testing.T) {
	a := NewArena(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 300; i++ {
				n := 1 + rng.Intn(64)
				buf := a.Lease(n)
				for j := range buf {
					if buf[j] != 0 {
						t.Errorf("concurrent lease not zeroed")
						return
					}
					buf[j] = float64(j)
				}
				a.Release(buf)
			}
		}(int64(g))
	}
	wg.Wait()
	st := a.Stats()
	if st.Leases != 8*300 || st.Releases != 8*300 {
		t.Fatalf("stats = %+v, want 2400 leases and releases", st)
	}
	if st.BytesLive != 0 {
		t.Fatalf("BytesLive after quiesce = %d, want 0", st.BytesLive)
	}
}

// TestArenaZeroLenLease pins the degenerate sizes.
func TestArenaZeroLenLease(t *testing.T) {
	a := NewArena(0)
	if buf := a.Lease(0); buf != nil {
		t.Fatalf("Lease(0) = %v, want nil", buf)
	}
	a.Release(nil) // must not panic or count
	if st := a.Stats(); st.Releases != 0 {
		t.Fatalf("Release(nil) counted: %+v", st)
	}
}

// TestLeaseDenseRemake pins the Dense integration: LeaseDense matches
// NewDense semantics and Remake retargets a header in place.
func TestLeaseDenseRemake(t *testing.T) {
	a := NewArena(0)
	m := a.LeaseDense(3, 4)
	if r, c := m.Dims(); r != 3 || c != 4 {
		t.Fatalf("LeaseDense dims = %dx%d", r, c)
	}
	m.Fill(2.5)
	a.ReleaseDense(m)

	var h Dense
	data := a.Lease(12)
	h.Remake(3, 4, data)
	if r, c := h.Dims(); r != 3 || c != 4 {
		t.Fatalf("Remake dims = %dx%d", r, c)
	}
	if &h.Data()[0] != &data[0] {
		t.Fatal("Remake did not adopt the provided backing")
	}
	for _, v := range h.Data() {
		if v != 0 {
			t.Fatal("recycled lease not zeroed after dirty release")
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Remake with mismatched length did not panic")
		}
	}()
	h.Remake(5, 5, data)
}

// TestSoftmaxToMatchesSoftmax pins bit-identity of the buffer-reusing
// variant against the allocating one, including in-place operation.
func TestSoftmaxToMatchesSoftmax(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(12)
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64() * 10
		}
		want := Softmax(v)
		dst := make([]float64, n)
		SoftmaxTo(dst, v)
		for i := range want {
			if math.Float64bits(dst[i]) != math.Float64bits(want[i]) {
				t.Fatalf("trial %d: SoftmaxTo[%d] = %v, Softmax = %v", trial, i, dst[i], want[i])
			}
		}
		// In-place must give the same result.
		inPlace := append([]float64(nil), v...)
		SoftmaxTo(inPlace, inPlace)
		for i := range want {
			if math.Float64bits(inPlace[i]) != math.Float64bits(want[i]) {
				t.Fatalf("trial %d: in-place SoftmaxTo[%d] = %v, want %v", trial, i, inPlace[i], want[i])
			}
		}
	}
}

// FuzzArena drives a random lease/release/trim schedule and checks the
// arena's two invariants — zeroed leases and no aliasing among live
// buffers — plus stats consistency.
func FuzzArena(f *testing.F) {
	f.Add(int64(1), uint8(4))
	f.Add(int64(42), uint8(64))
	f.Fuzz(func(t *testing.T, seed int64, capHint uint8) {
		a := NewArena(int(capHint % 8))
		rng := rand.New(rand.NewSource(seed))
		live := map[*float64][]float64{}
		var held [][]float64
		for op := 0; op < 200; op++ {
			switch {
			case len(held) > 0 && rng.Intn(4) == 0:
				j := rng.Intn(len(held))
				buf := held[j]
				held = append(held[:j], held[j+1:]...)
				delete(live, &buf[0])
				a.Release(buf)
			case rng.Intn(50) == 0:
				a.Trim()
			default:
				n := 1 + rng.Intn(40)
				buf := a.Lease(n)
				for i, v := range buf {
					if v != 0 {
						t.Fatalf("op %d: lease not zeroed at %d", op, i)
					}
				}
				if _, dup := live[&buf[0]]; dup {
					t.Fatalf("op %d: lease aliases a live buffer", op)
				}
				for i := range buf {
					buf[i] = 1
				}
				live[&buf[0]] = buf
				held = append(held, buf)
			}
		}
		st := a.Stats()
		if st.Hits+st.Misses != st.Leases {
			t.Fatalf("hits %d + misses %d != leases %d", st.Hits, st.Misses, st.Leases)
		}
		var wantLive int64
		for _, buf := range held {
			wantLive += int64(len(buf)) * 8
		}
		if st.BytesLive != wantLive {
			t.Fatalf("BytesLive = %d, want %d", st.BytesLive, wantLive)
		}
	})
}
