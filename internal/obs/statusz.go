package obs

import (
	"encoding/json"
	"io"
	"runtime"
	"time"
)

// StatusSnapshot is the JSON shape served at /statusz: process vitals plus
// every registered metric, decoded-friendly for dashboards and smoke tests
// that don't speak the Prometheus text format.
type StatusSnapshot struct {
	UptimeSeconds float64                   `json:"uptime_seconds"`
	GoVersion     string                    `json:"go_version"`
	NumGoroutine  int                       `json:"num_goroutine"`
	NumCPU        int                       `json:"num_cpu"`
	HeapAllocMB   float64                   `json:"heap_alloc_mb"`
	Metrics       map[string][]SeriesStatus `json:"metrics"`
}

// SeriesStatus is one series of one metric in the JSON snapshot. Exactly
// one of Value (counters/gauges) or the histogram trio is populated,
// discriminated by Type.
type SeriesStatus struct {
	Type    string            `json:"type"`
	Labels  map[string]string `json:"labels,omitempty"`
	Value   float64           `json:"value"`
	Count   int64             `json:"count,omitempty"`
	Sum     float64           `json:"sum,omitempty"`
	Buckets map[string]int64  `json:"buckets,omitempty"`
}

// Snapshot captures the registry's current state. Safe on a nil registry
// (returns vitals with an empty metric map).
func (r *Registry) Snapshot() StatusSnapshot {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	snap := StatusSnapshot{
		GoVersion:    runtime.Version(),
		NumGoroutine: runtime.NumGoroutine(),
		NumCPU:       runtime.NumCPU(),
		HeapAllocMB:  float64(ms.HeapAlloc) / (1 << 20),
		Metrics:      map[string][]SeriesStatus{},
	}
	if r == nil {
		return snap
	}
	snap.UptimeSeconds = time.Since(r.start).Seconds()
	for _, f := range r.sortedFamilies() {
		for _, s := range f.sortedSeries() {
			st := SeriesStatus{Type: string(f.kind)}
			if len(f.labelNames) > 0 {
				st.Labels = map[string]string{}
				for i, n := range f.labelNames {
					st.Labels[n] = s.labelValues[i]
				}
			}
			switch f.kind {
			case kindCounter:
				st.Value = float64(s.counter.Value())
			case kindGauge:
				st.Value = s.gauge.Value()
			case kindHistogram:
				st.Count = s.hist.Count()
				st.Sum = s.hist.Sum()
				st.Buckets = map[string]int64{}
				cum := s.hist.snapshot()
				for i, bound := range s.hist.bounds {
					st.Buckets[formatFloat(bound)] = cum[i]
				}
				st.Buckets["+Inf"] = cum[len(cum)-1]
			}
			snap.Metrics[f.name] = append(snap.Metrics[f.name], st)
		}
	}
	return snap
}

// WriteStatusz renders the snapshot as indented JSON.
func (r *Registry) WriteStatusz(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
