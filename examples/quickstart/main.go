// Quickstart: build an interaction graph from a home's automation rules,
// train a detector on synthetic data, and check the home for interaction
// vulnerabilities — the minimal end-to-end FexIoT workflow.
package main

import (
	"fmt"
	"log"

	"fexiot"
)

func main() {
	opts := fexiot.DefaultOptions()
	opts.Seed = 7
	sys, err := fexiot.New(opts)
	if err != nil {
		log.Fatal(err)
	}

	// 1. A training corpus: interaction graphs sampled from many synthetic
	// homes (stands in for the crawled multi-platform datasets).
	fmt.Println("building training corpus…")
	var training []*fexiot.Graph
	for home := 0; home < 40; home++ {
		arch := fexiot.ArchetypeNames()[home%len(fexiot.ArchetypeNames())]
		deployed := fexiot.GenerateHome(arch, 25, int64(home+1))
		for i := 0; i < 8; i++ {
			training = append(training, sys.BuildGraph(deployed))
		}
	}
	vulnerable := 0
	for _, g := range training {
		if g.Label {
			vulnerable++
		}
	}
	fmt.Printf("  %d graphs (%d labelled vulnerable)\n", len(training), vulnerable)

	// 2. Train the detection pipeline (contrastive GNN + linear head).
	fmt.Println("training detector…")
	sys.TrainCentral(training, 10, 300)

	// 3. Audit a new home.
	home := fexiot.GenerateHome("safety", 18, 99)
	fmt.Println("\nauditing a new 'safety' home with rules such as:")
	for _, r := range home[:4] {
		fmt.Printf("  [%s] %s\n", r.Platform, r.Description)
	}
	g := sys.BuildGraph(home)
	verdict, err := sys.Detect(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninteraction graph: %d rules, %d causal edges\n", g.N(), len(g.Edges))
	fmt.Printf("verdict: vulnerable=%v score=%.3f drifting=%v\n",
		verdict.Vulnerable, verdict.Score, verdict.Drifting)
	fmt.Printf("ground truth: vulnerable=%v tags=%v\n", g.Label, g.Tags)

	// 4. If flagged, explain which rules interact dangerously.
	if verdict.Vulnerable {
		ex, err := sys.Explain(g)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nroot-cause subgraph (fidelity %.2f, sparsity %.2f):\n",
			ex.Fidelity, ex.Sparsity)
		for _, r := range ex.Rules {
			if r != nil {
				fmt.Printf("  → %s\n", r.Description)
			}
		}
	}
}
