package rules

import (
	"fmt"
	"strings"
)

// Platform identifies one of the five IoT automation platforms the paper
// crawls (§IV-A).
type Platform int

// The five evaluated platforms.
const (
	SmartThings Platform = iota
	HomeAssistant
	IFTTT
	GoogleAssistant
	AmazonAlexa
	numPlatforms
)

// NumPlatforms is the platform count.
const NumPlatforms = int(numPlatforms)

// String names the platform.
func (p Platform) String() string {
	switch p {
	case SmartThings:
		return "SmartThings"
	case HomeAssistant:
		return "HomeAssistant"
	case IFTTT:
		return "IFTTT"
	case GoogleAssistant:
		return "GoogleAssistant"
	case AmazonAlexa:
		return "AmazonAlexa"
	default:
		return "Unknown"
	}
}

// VoicePlatform reports whether rules on this platform are concise voice
// commands (encoded with the sentence encoder in the paper) rather than
// verbose descriptions (encoded with word embeddings of key phrases).
func (p Platform) VoicePlatform() bool {
	return p == GoogleAssistant || p == AmazonAlexa
}

// Describe renders a rule's natural-language description in the idiom of
// its platform. The five grammars mirror how each platform phrases
// automations: SmartThings app descriptions put the action first, Home
// Assistant blueprints lead with the trigger, IFTTT applets use the
// canonical If-This-Then-That shape, and the voice assistants phrase
// routines around spoken commands.
func Describe(p Platform, trigger Condition, actions []Effect) string {
	act := joinActions(actions)
	trig := trigger.ConditionPhrase()
	switch p {
	case SmartThings:
		return capitalize(fmt.Sprintf("%s when %s", act, trig))
	case HomeAssistant:
		return capitalize(fmt.Sprintf("when %s, %s", trig, act))
	case IFTTT:
		return capitalize(fmt.Sprintf("if %s, then %s", trig, act))
	case GoogleAssistant:
		if trigger.Channel == ChanVoice {
			return fmt.Sprintf("Hey Google, %s", act)
		}
		return capitalize(fmt.Sprintf("%s if %s", act, trig))
	case AmazonAlexa:
		if trigger.Channel == ChanVoice {
			return fmt.Sprintf("Alexa, %s", act)
		}
		return capitalize(fmt.Sprintf("%s when %s", act, trig))
	default:
		return capitalize(fmt.Sprintf("if %s, then %s", trig, act))
	}
}

func joinActions(actions []Effect) string {
	parts := make([]string, len(actions))
	for i, a := range actions {
		parts[i] = a.ActionPhrase()
	}
	switch len(parts) {
	case 0:
		return ""
	case 1:
		return parts[0]
	default:
		return strings.Join(parts[:len(parts)-1], ", ") + " and " + parts[len(parts)-1]
	}
}

func capitalize(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}
