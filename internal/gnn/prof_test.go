package gnn

import (
	"testing"

	"fexiot/internal/autodiff"
)

// BenchmarkTrainContrastive measures the core training hot path (used for
// profiling; the repository-level benches live in bench_test.go).
func BenchmarkTrainContrastive(b *testing.B) {
	gs := benchGraphs(b, 200)
	m := NewGIN(featDim, 32, 16, 7)
	cfg := DefaultTrainConfig(11)
	cfg.PairsPerEpoch = 50
	opt := autodiff.NewAdam(0.005)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		TrainContrastive(m, gs, cfg, opt)
	}
}
